//! The collective engine over a pluggable [`Transport`], plus the simulated
//! thread-backed cluster.
//!
//! Collectives run a *root-coordinated round protocol* over byte frames
//! ([`crate::transport::wire`]): every rank sends its contribution to rank 0,
//! rank 0 folds the contributions **in fixed rank order** (which is what
//! makes every cost-model algorithm bit-identical by construction) and
//! replies with the reduced result and the round's arrival-time summary.
//! The engine is transport-agnostic — the in-process
//! [`crate::transport::thread::ThreadFabric`] and the multi-process
//! [`crate::transport::tcp::TcpTransport`] carry identical frames — and all
//! *billing* is driven by the network cost model and logical payload sizes,
//! never by transport wall time, so a scenario produces byte-identical
//! reports on either backend.
//!
//! All engine scratch (frame buffers, the fold accumulator, length tables)
//! is reused across rounds, so a warm collective performs zero heap
//! allocations on the thread backend.
//!
//! Collective-order violations (mismatched operation or payload length
//! across ranks) poison the transport and panic **loudly** on every rank,
//! naming the offending rank and the expected payload — a silent wrong
//! answer is the one failure mode a consensus solver cannot afford.
//!
//! # Oversubscription policy
//!
//! Each simulated rank is a host thread, but there is only **one**
//! process-wide compute pool (the `rayon` shim's work-sharing pool). When a
//! rank reaches a parallel kernel while another rank holds the pool, its
//! dispatch attempt fails the pool's `try_lock` and the rank simply runs
//! the region **inline on its own thread** — same canonical chunk order,
//! same bits, no queueing and no deadlock. Oversubscription therefore
//! degrades throughput gracefully (ranks compute concurrently with each
//! other, sequentially within themselves) and never changes results.

use crate::comm::{CollectiveHandle, Communicator, ROOT_RANK};
use crate::network::{CollectiveAlgorithm, CollectiveKind, CollectiveSelector, Compression, NetworkModel};
use crate::stats::CommStats;
use crate::straggler::StragglerModel;
use crate::transport::thread::ThreadFabric;
use crate::transport::wire::{self, RoundOp, ANY_LEN};
use crate::transport::Transport;
use crate::workspace::{CommWorkspace, CommWorkspaceStats};

/// The tracer's mirror of [`CollectiveKind`] (keeps `nadmm-trace` a leaf).
fn trace_kind(kind: CollectiveKind) -> nadmm_trace::CollKind {
    match kind {
        CollectiveKind::Barrier => nadmm_trace::CollKind::Barrier,
        CollectiveKind::Broadcast => nadmm_trace::CollKind::Broadcast,
        CollectiveKind::Reduce => nadmm_trace::CollKind::Reduce,
        CollectiveKind::Allreduce => nadmm_trace::CollKind::Allreduce,
        CollectiveKind::Gather => nadmm_trace::CollKind::Gather,
        CollectiveKind::Scatter => nadmm_trace::CollKind::Scatter,
        CollectiveKind::Allgather => nadmm_trace::CollKind::Allgather,
    }
}

/// The tracer's mirror of [`CollectiveAlgorithm`].
fn trace_algo(algo: CollectiveAlgorithm) -> nadmm_trace::CollAlgo {
    match algo {
        CollectiveAlgorithm::Naive => nadmm_trace::CollAlgo::Naive,
        CollectiveAlgorithm::BinomialTree => nadmm_trace::CollAlgo::BinomialTree,
        CollectiveAlgorithm::Ring => nadmm_trace::CollAlgo::Ring,
        CollectiveAlgorithm::RecursiveHalvingDoubling => nadmm_trace::CollAlgo::RecursiveHalvingDoubling,
    }
}

/// Arrival-time summary of one completed collective round: the latest and
/// earliest per-rank arrival on the simulated clocks. The latest arrival
/// gates completion (a straggler delays everyone); the spread is the round
/// skew surfaced through [`CommStats`].
#[derive(Debug, Clone, Copy)]
struct RoundTiming {
    max_time: f64,
    min_time: f64,
}

/// What one rank puts into a collective round.
enum Give<'a> {
    /// A payload of elements (possibly empty — barriers, non-root gathers).
    Data(&'a [f64]),
    /// A dead rank's contribution: `len` logical elements, all exact zeros,
    /// no payload bytes on the wire. Valid for the element-wise reductions.
    Tombstone(usize),
    /// No payload; the rank expects the root's result. `Some(len)` asserts
    /// the expected element count (in-place broadcast), `None` accepts any
    /// (allocating broadcast/scatter).
    Expect(Option<usize>),
}

/// Reusable engine scratch: every buffer keeps its capacity across rounds,
/// so a warm collective allocates nothing.
#[derive(Default)]
struct Scratch {
    /// Outgoing frame bytes.
    tx: Vec<u8>,
    /// Incoming frame bytes.
    rx: Vec<u8>,
    /// The round's result elements (on the root: the fold accumulator).
    acc: Vec<f64>,
    /// Per-rank contribution lengths of the round.
    lens: Vec<u64>,
}

/// Communicator handle owned by one rank, layered over a boxed transport.
pub struct ClusterComm {
    rank: usize,
    size: usize,
    network: NetworkModel,
    selector: CollectiveSelector,
    compression: Compression,
    transport: Box<dyn Transport>,
    /// Number of collective rounds this rank has entered.
    rounds: u64,
    elapsed: f64,
    /// Multiplicative straggler factor applied to every compute charge
    /// (exactly 1.0 on homogeneous clusters, which multiplies bit-exactly).
    compute_scale: f64,
    stats: CommStats,
    pool: CommWorkspace,
    scratch: Scratch,
}

/// The historical name of the engine, kept for the thread-backed call sites.
pub type ThreadComm = ClusterComm;

const F64_BYTES: f64 = std::mem::size_of::<f64>() as f64;

impl ClusterComm {
    fn new(
        size: usize,
        network: NetworkModel,
        selector: CollectiveSelector,
        compression: Compression,
        compute_scale: f64,
        transport: Box<dyn Transport>,
    ) -> Self {
        assert_eq!(transport.size(), size, "transport size disagrees with the cluster size");
        Self {
            rank: transport.rank(),
            size,
            network,
            selector,
            compression,
            transport,
            rounds: 0,
            elapsed: 0.0,
            compute_scale,
            stats: CommStats::default(),
            pool: CommWorkspace::new(),
            scratch: Scratch::default(),
        }
    }

    /// The network model this communicator charges.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// The collective-algorithm selection rule in effect.
    pub fn selector(&self) -> CollectiveSelector {
        self.selector
    }

    /// The wire-compression policy collective payloads go through.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// The straggler compute-slowdown factor of this rank (1.0 when no
    /// straggler model is configured).
    pub fn straggler_scale(&self) -> f64 {
        self.compute_scale
    }

    /// Short name of the transport backend underneath ("thread", "tcp").
    pub fn transport_backend(&self) -> &'static str {
        self.transport.backend()
    }

    /// Pool counters of the communication workspace (staging buffers for the
    /// split-phase handles). Used by the zero-allocation proofs.
    pub fn comm_pool_stats(&self) -> CommWorkspaceStats {
        self.pool.stats()
    }

    /// Resets the communication-workspace counters (buffers are kept).
    pub fn reset_comm_pool_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Tears the engine down, handing back the transport (and its cached
    /// connections) for the next run on the same fabric.
    pub fn into_transport(self) -> Box<dyn Transport> {
        self.transport
    }

    /// Gathers every rank's [`CommStats`] at the root, in rank order
    /// (`None` elsewhere). This is a transport-level side channel — nothing
    /// is billed on the simulated clocks — used by the multi-process run to
    /// reconstruct the cluster-wide skew summary the in-process path reads
    /// directly from its per-rank results.
    pub fn gather_comm_stats(&mut self) -> Option<Vec<CommStats>> {
        if self.size == 1 {
            return Some(vec![self.stats]);
        }
        if self.rank == ROOT_RANK {
            let mut all = Vec::with_capacity(self.size);
            all.push(self.stats);
            let mut rx = std::mem::take(&mut self.scratch.rx);
            for peer in 1..self.size {
                self.transport.recv_into(peer, &mut rx);
                let stats = match wire::decode(&rx) {
                    Ok(wire::Frame::Raw { bytes }) => CommStats::from_le_bytes(bytes)
                        .unwrap_or_else(|e| panic!("stats gather: rank {peer} sent undecodable stats: {e}")),
                    Ok(wire::Frame::Error { message }) => panic!("{message}"),
                    Ok(other) => panic!("stats gather: rank {peer} sent an unexpected {other:?}"),
                    Err(e) => panic!("stats gather: corrupt frame from rank {peer}: {e}"),
                };
                all.push(stats);
            }
            self.scratch.rx = rx;
            Some(all)
        } else {
            let mut bytes = Vec::new();
            self.stats.to_le_bytes(&mut bytes);
            let mut tx = std::mem::take(&mut self.scratch.tx);
            wire::encode_raw(&mut tx, &bytes);
            self.transport.send(ROOT_RANK, &tx);
            self.scratch.tx = tx;
            None
        }
    }

    fn begin_round(&mut self) -> u64 {
        let r = self.rounds;
        self.rounds += 1;
        r
    }

    /// Bytes one payload element occupies on the simulated wire (8 without
    /// compression, 2 under f16/bf16). The network model — algorithm
    /// selection, crossover payloads, billed volume — sees this size.
    fn wire_bpe(&self) -> f64 {
        self.compression.wire_bytes_per_element()
    }

    /// Poisons the transport with `msg` (so peers blocked in a receive
    /// panic too instead of deadlocking in a round that can never
    /// complete) and panics with it.
    fn poison_and_panic(&mut self, msg: String) -> ! {
        self.transport.poison(&msg);
        panic!("{msg}");
    }

    /// Runs one collective round: contributes `give`, synchronises with
    /// every rank through the root, and leaves the round's result in
    /// `scratch.acc` and the per-rank contribution lengths in
    /// `scratch.lens`. With `compress`, payload elements are rounded
    /// through the wire format first (staged in the pooled workspace) — the
    /// compress→send→decompress pipeline; every rank then observes the
    /// identical compressed values, including its own.
    ///
    /// The root folds contributions in fixed rank order with the same
    /// arithmetic regardless of the selected cost-model algorithm, and a
    /// tombstone folds exactly like an explicit all-zeros payload —
    /// bit-identity by construction in both cases.
    fn run_round(&mut self, op: RoundOp, give: Give<'_>, compress: bool) -> RoundTiming {
        let my_round = self.begin_round();
        let my_time = self.elapsed;
        // Stage the outgoing payload through the wire format if requested
        // (pooled, so warm compressed rounds stay allocation-free).
        let staged = match give {
            Give::Data(data) if compress && !self.compression.is_identity() => {
                let compression = self.compression;
                let mut s = self.pool.acquire(data.len());
                for (w, &v) in s.iter_mut().zip(data) {
                    *w = compression.round(v);
                }
                Some(s)
            }
            _ => None,
        };
        let payload: &[f64] = match (&staged, &give) {
            (Some(s), _) => s,
            (None, Give::Data(data)) => data,
            (None, _) => &[],
        };
        let (len_field, tombstone): (u64, bool) = match give {
            Give::Data(_) => (payload.len() as u64, false),
            Give::Tombstone(len) => (len as u64, true),
            Give::Expect(Some(len)) => (len as u64, false),
            Give::Expect(None) => (ANY_LEN, false),
        };
        let timing = if self.rank == ROOT_RANK {
            self.root_round(my_round, op, payload, len_field, tombstone, my_time)
        } else {
            self.peer_round(my_round, op, payload, len_field, tombstone, my_time)
        };
        if let Some(s) = staged {
            self.pool.release(s);
        }
        timing
    }

    /// The root's side of a round: seed the fold with its own contribution,
    /// fold every peer's contribution in rank order, reply with the result.
    fn root_round(
        &mut self,
        my_round: u64,
        op: RoundOp,
        payload: &[f64],
        len_field: u64,
        tombstone: bool,
        my_time: f64,
    ) -> RoundTiming {
        let n = self.size;
        let Scratch {
            ref mut acc,
            ref mut lens,
            ..
        } = self.scratch;
        acc.clear();
        lens.clear();
        // Seed in rank order: the root's own contribution is slot 0. A
        // tombstone seeds explicit zeros — the identical bits a dead rank
        // used to deposit.
        if tombstone {
            acc.extend(std::iter::repeat_n(0.0, len_field as usize));
            lens.push(len_field);
        } else {
            acc.extend_from_slice(payload);
            lens.push(payload.len() as u64);
        }
        let root_len = acc.len();
        // Completion is governed by the *latest* arrival — a straggling rank
        // delays everyone — and the max−min spread is the round's skew. The
        // folds mirror the rank-order iteration of the former in-process
        // rendezvous bit for bit.
        let mut max_time = 0.0f64.max(my_time);
        let mut min_time = f64::INFINITY.min(my_time);
        let mut rx = std::mem::take(&mut self.scratch.rx);
        let mut violation: Option<String> = None;
        'peers: for peer in 1..n {
            self.transport.recv_into(peer, &mut rx);
            nadmm_trace::instant(nadmm_trace::Tag::TransportSendRecv);
            let frame = match wire::decode(&rx) {
                Ok(f) => f,
                Err(e) => {
                    violation = Some(format!("collective protocol violation: corrupt frame from rank {peer}: {e}"));
                    break 'peers;
                }
            };
            let (round, peer_op, peer_tomb, time, len, peer_payload) = match frame {
                wire::Frame::Contribution {
                    round,
                    op,
                    tombstone,
                    time,
                    len,
                    payload,
                } => (round, op, tombstone, time, len, payload),
                wire::Frame::Error { message } => {
                    let message = message.to_string();
                    self.scratch.rx = rx;
                    self.poison_and_panic(message);
                }
                other => {
                    violation = Some(format!(
                        "collective protocol violation: rank {peer} sent {other:?} where a contribution was expected"
                    ));
                    break 'peers;
                }
            };
            if round != my_round {
                violation = Some(format!(
                    "collective-order violation: rank {peer} is in collective round {round} while rank 0 is in round {my_round}"
                ));
                break 'peers;
            }
            if peer_op != op {
                violation = Some(format!(
                    "collective-order violation: rank {peer} entered {peer_op:?} while rank 0 is executing {op:?}"
                ));
                break 'peers;
            }
            if peer_tomb && !matches!(op, RoundOp::Sum | RoundOp::Max | RoundOp::SumMax { .. }) {
                violation = Some(format!(
                    "collective protocol violation: rank {peer} sent a tombstone for {op:?}"
                ));
                break 'peers;
            }
            let contributed = if peer_tomb { len as usize } else { peer_payload.count() };
            match op {
                RoundOp::Sum | RoundOp::Max | RoundOp::SumMax { .. } => {
                    if contributed != root_len {
                        violation = Some(format!(
                            "collective-order violation: rank {peer} contributed {contributed} elements to {op:?}, \
                             expected {root_len} (as contributed by rank 0)"
                        ));
                        break 'peers;
                    }
                }
                RoundOp::CopyRoot => {
                    if len != ANY_LEN && len as usize != root_len {
                        violation = Some(format!(
                            "collective-order violation: rank {peer} supplied a broadcast buffer of {len} elements \
                             but the root broadcast {root_len}"
                        ));
                        break 'peers;
                    }
                }
                RoundOp::Barrier | RoundOp::Concat => {}
            }
            let acc = &mut self.scratch.acc;
            match op {
                RoundOp::Barrier | RoundOp::CopyRoot => {}
                RoundOp::Sum => {
                    if peer_tomb {
                        for a in acc.iter_mut() {
                            *a += 0.0;
                        }
                    } else {
                        for (i, a) in acc.iter_mut().enumerate() {
                            *a += peer_payload.get(i);
                        }
                    }
                }
                RoundOp::Max => {
                    if peer_tomb {
                        for a in acc.iter_mut() {
                            *a = a.max(0.0);
                        }
                    } else {
                        for (i, a) in acc.iter_mut().enumerate() {
                            *a = a.max(peer_payload.get(i));
                        }
                    }
                }
                RoundOp::SumMax { sum_len } => {
                    for (i, a) in acc.iter_mut().enumerate() {
                        let v = if peer_tomb { 0.0 } else { peer_payload.get(i) };
                        if i < sum_len {
                            *a += v;
                        } else {
                            *a = a.max(v);
                        }
                    }
                }
                RoundOp::Concat => peer_payload.extend_into(acc),
            }
            self.scratch
                .lens
                .push(if peer_tomb { len } else { peer_payload.count() as u64 });
            max_time = max_time.max(time);
            min_time = min_time.min(time);
        }
        self.scratch.rx = rx;
        if let Some(msg) = violation {
            self.poison_and_panic(msg);
        }
        // Reply with the folded result (peers that contributed after a
        // violation never get one — they panic on the poison notice).
        let mut tx = std::mem::take(&mut self.scratch.tx);
        wire::encode_result(&mut tx, my_round, max_time, min_time, &self.scratch.lens, &self.scratch.acc);
        for peer in 1..n {
            self.transport.send(peer, &tx);
            nadmm_trace::instant(nadmm_trace::Tag::TransportSendRecv);
        }
        self.scratch.tx = tx;
        RoundTiming { max_time, min_time }
    }

    /// A non-root rank's side of a round: contribute to the root, block on
    /// its result frame.
    fn peer_round(
        &mut self,
        my_round: u64,
        op: RoundOp,
        payload: &[f64],
        len_field: u64,
        tombstone: bool,
        my_time: f64,
    ) -> RoundTiming {
        let mut tx = std::mem::take(&mut self.scratch.tx);
        wire::encode_contribution(&mut tx, my_round, op, tombstone, my_time, len_field, payload);
        self.transport.send(ROOT_RANK, &tx);
        nadmm_trace::instant(nadmm_trace::Tag::TransportSendRecv);
        self.scratch.tx = tx;
        let mut rx = std::mem::take(&mut self.scratch.rx);
        self.transport.recv_into(ROOT_RANK, &mut rx);
        nadmm_trace::instant(nadmm_trace::Tag::TransportSendRecv);
        let timing = match wire::decode(&rx) {
            Ok(wire::Frame::Result {
                round,
                max_time,
                min_time,
                lens,
                payload,
            }) => {
                if round != my_round {
                    let msg = format!(
                        "collective-order violation: rank {} received the result of round {round} while in round {my_round}",
                        self.rank
                    );
                    self.scratch.rx = rx;
                    self.poison_and_panic(msg);
                }
                let acc = &mut self.scratch.acc;
                acc.clear();
                payload.extend_into(acc);
                self.scratch.lens.clear();
                for i in 0..lens.count() {
                    self.scratch.lens.push(lens.get(i));
                }
                RoundTiming { max_time, min_time }
            }
            // The root (or a peer, relayed by its poison) hit a violation:
            // re-panic with the original message on this rank too.
            Ok(wire::Frame::Error { message }) => {
                let message = message.to_string();
                self.scratch.rx = rx;
                panic!("{message}");
            }
            Ok(other) => {
                let msg = format!("collective protocol violation: rank 0 sent {other:?} where a round result was expected");
                self.scratch.rx = rx;
                self.poison_and_panic(msg);
            }
            Err(e) => {
                let msg = format!("collective protocol violation: corrupt frame from rank 0: {e}");
                self.scratch.rx = rx;
                self.poison_and_panic(msg);
            }
        };
        self.scratch.rx = rx;
        timing
    }

    /// Charges one completed blocking collective: the rank's clock advances
    /// to `max(arrivals) + cost` — collectives complete at the *latest*
    /// arrival, so a straggling rank delays everyone — and the elapsed wall
    /// (including the straggler wait) is recorded against `kind`. The wait
    /// itself (`max(arrivals) − my arrival`) and the round's arrival spread
    /// feed the idle-wait/skew counters of [`CommStats`].
    /// `cost_bytes`, `sent`, and `received` are *on-wire* (post-compression)
    /// volumes; `logical_sent`/`logical_received` the full-width ones.
    #[allow(clippy::too_many_arguments)]
    fn bill_blocking(
        &mut self,
        kind: CollectiveKind,
        cost_bytes: f64,
        sent: f64,
        received: f64,
        logical_sent: f64,
        logical_received: f64,
        timing: RoundTiming,
    ) {
        let (algo, cost) = self.network.select(kind, self.size, cost_bytes, self.selector);
        let start = self.elapsed;
        self.stats
            .record_skew(timing.max_time - start, timing.max_time - timing.min_time);
        let finish = timing.max_time + cost;
        if finish > self.elapsed {
            self.elapsed = finish;
        }
        self.stats.record_collective_wire(
            kind,
            algo,
            sent,
            received,
            logical_sent,
            logical_received,
            self.elapsed - start,
        );
        if nadmm_trace::enabled() {
            // Split the round's billed wall into straggler wait (arrivals
            // later than this rank) and the collective's own cost, so the
            // trace clock lands exactly on the billed comm clock.
            let total = self.elapsed - start;
            let idle = (timing.max_time - start).clamp(0.0, total);
            nadmm_trace::sync_to(start);
            nadmm_trace::span_dur(nadmm_trace::Tag::IdleWait, idle);
            nadmm_trace::span_dur(
                nadmm_trace::Tag::CollectiveRound {
                    kind: trace_kind(kind),
                    algo: trace_algo(algo),
                },
                total - idle,
            );
        }
    }

    /// Shared implementation of the split-phase element-wise allreduces.
    /// Round skew is recorded at start; idle wait is not (a split-phase
    /// collective's wait is deliberately overlapped with compute).
    fn start_elementwise(&mut self, op: RoundOp, give: Give<'_>, len: usize) -> CollectiveHandle {
        let logical = len as f64 * F64_BYTES;
        let wire = len as f64 * self.wire_bpe();
        let (algo, cost) = self.network.select(CollectiveKind::Allreduce, self.size, wire, self.selector);
        let timing = self.run_round(op, give, true);
        let mut result = self.pool.acquire(len);
        result.copy_from_slice(&self.scratch.acc);
        self.stats.record_skew(0.0, timing.max_time - timing.min_time);
        CollectiveHandle::new(
            result,
            timing.max_time + cost,
            CollectiveKind::Allreduce,
            algo,
            wire,
            wire,
            false,
        )
        .with_logical_bytes(logical, logical)
    }

    /// A dead rank's replacement for [`Communicator::reduce_sum_root_into`]:
    /// contributes `len` exact zeros as an empty tombstone frame — no
    /// payload staged, copied, or sent — with billing identical to an
    /// explicit zero-filled buffer, so reports stay bit-identical. Returns
    /// whether this rank is the root (whose reduced result is discarded; a
    /// tombstoning root has no buffer to fill).
    fn reduce_sum_root_tombstone_impl(&mut self, len: usize) -> bool {
        let logical = len as f64 * F64_BYTES;
        let wire = len as f64 * self.wire_bpe();
        let peers = self.size as f64 - 1.0;
        let is_root = self.rank == ROOT_RANK;
        let timing = self.run_round(RoundOp::Sum, Give::Tombstone(len), false);
        let (received, logical_received) = if is_root {
            (wire * peers, logical * peers)
        } else {
            (0.0, 0.0)
        };
        self.bill_blocking(
            CollectiveKind::Reduce,
            wire,
            wire,
            received,
            logical,
            logical_received,
            timing,
        );
        is_root
    }
}

impl Communicator for ClusterComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn barrier(&mut self) {
        let timing = self.run_round(RoundOp::Barrier, Give::Data(&[]), false);
        self.bill_blocking(CollectiveKind::Barrier, 0.0, 0.0, 0.0, 0.0, 0.0, timing);
    }

    fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        let logical = data.len() as f64 * F64_BYTES;
        let wire = data.len() as f64 * self.wire_bpe();
        let peers = self.size as f64 - 1.0;
        let timing = self.run_round(RoundOp::Concat, Give::Data(data), true);
        let mut contributions = Vec::with_capacity(self.size);
        let mut offset = 0usize;
        for r in 0..self.size {
            let len = self.scratch.lens[r] as usize;
            contributions.push(self.scratch.acc[offset..offset + len].to_vec());
            offset += len;
        }
        self.bill_blocking(
            CollectiveKind::Allgather,
            wire,
            wire,
            wire * peers,
            logical,
            logical * peers,
            timing,
        );
        contributions
    }

    fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64> {
        let mut out = data.to_vec();
        self.allreduce_sum_into(&mut out);
        out
    }

    fn reduce_sum_root(&mut self, data: &[f64]) -> Option<Vec<f64>> {
        let mut buf = data.to_vec();
        if self.reduce_sum_root_into(&mut buf) {
            Some(buf)
        } else {
            None
        }
    }

    fn gather_root(&mut self, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let logical = data.len() as f64 * F64_BYTES;
        let wire = data.len() as f64 * self.wire_bpe();
        let peers = self.size as f64 - 1.0;
        let is_root = self.rank == ROOT_RANK;
        let timing = self.run_round(RoundOp::Concat, Give::Data(data), true);
        let contributions = if is_root {
            let mut all = Vec::with_capacity(self.size);
            let mut offset = 0usize;
            for r in 0..self.size {
                let len = self.scratch.lens[r] as usize;
                all.push(self.scratch.acc[offset..offset + len].to_vec());
                offset += len;
            }
            Some(all)
        } else {
            None
        };
        let (received, logical_received) = if is_root {
            (wire * peers, logical * peers)
        } else {
            (0.0, 0.0)
        };
        self.bill_blocking(
            CollectiveKind::Gather,
            wire,
            wire,
            received,
            logical,
            logical_received,
            timing,
        );
        contributions
    }

    fn broadcast_root(&mut self, data: Option<&[f64]>) -> Vec<f64> {
        let is_root = self.rank == ROOT_RANK;
        let payload: &[f64] = if is_root {
            data.expect("root must provide broadcast data")
        } else {
            &[]
        };
        let sent = payload.len() as f64 * self.wire_bpe();
        let logical_sent = payload.len() as f64 * F64_BYTES;
        // The root's payload is compressed at staging, so every rank —
        // including the root, whose return value also comes from the round
        // result — observes the identical wire-format values.
        let give = if is_root { Give::Data(payload) } else { Give::Expect(None) };
        let timing = self.run_round(RoundOp::CopyRoot, give, true);
        let root_data = self.scratch.acc.to_vec();
        let wire = root_data.len() as f64 * self.wire_bpe();
        let logical = root_data.len() as f64 * F64_BYTES;
        let (received, logical_received) = if is_root { (0.0, 0.0) } else { (wire, logical) };
        self.bill_blocking(
            CollectiveKind::Broadcast,
            wire,
            sent,
            received,
            logical_sent,
            logical_received,
            timing,
        );
        root_data
    }

    fn scatter_root(&mut self, parts: Option<&[Vec<f64>]>) -> Vec<f64> {
        // The root flattens its per-rank payloads with a length header so the
        // round only ever carries flat f64 vectors. Under compression only
        // the payload section is rounded through the wire format — the
        // length header must survive exactly (every small integer does fit
        // f16, but the framing must not depend on that) — which is why the
        // flat vector is pre-rounded here and the round runs uncompressed.
        let compression = self.compression;
        let is_root = self.rank == ROOT_RANK;
        let flat = if is_root {
            let parts = parts.expect("root must provide scatter parts");
            assert_eq!(parts.len(), self.size, "scatter_root: need one part per rank");
            let mut flat = Vec::with_capacity(self.size + parts.iter().map(|p| p.len()).sum::<usize>());
            for p in parts {
                flat.push(p.len() as f64);
            }
            for p in parts {
                flat.extend(p.iter().map(|&v| compression.round(v)));
            }
            flat
        } else {
            Vec::new()
        };
        let wire_bpe = self.wire_bpe();
        let (sent, logical_sent) = if is_root {
            let headers = self.size as f64 * F64_BYTES;
            let payload = (flat.len() - self.size) as f64;
            (headers + payload * wire_bpe, headers + payload * F64_BYTES)
        } else {
            (0.0, 0.0)
        };
        let give = if is_root { Give::Data(&flat) } else { Give::Expect(None) };
        let timing = self.run_round(RoundOp::CopyRoot, give, false);
        let (mine, avg_bytes) = {
            let root_flat = &self.scratch.acc;
            let size = self.size;
            let lengths: Vec<usize> = root_flat[..size].iter().map(|&l| l as usize).collect();
            let avg_bytes = lengths.iter().sum::<usize>() as f64 / size as f64 * wire_bpe;
            let mut offset = size;
            for l in lengths.iter().take(self.rank) {
                offset += l;
            }
            (root_flat[offset..offset + lengths[self.rank]].to_vec(), avg_bytes)
        };
        let (received, logical_received) = if is_root {
            (0.0, 0.0)
        } else {
            (mine.len() as f64 * wire_bpe, mine.len() as f64 * F64_BYTES)
        };
        self.bill_blocking(
            CollectiveKind::Scatter,
            avg_bytes,
            sent,
            received,
            logical_sent,
            logical_received,
            timing,
        );
        mine
    }

    // ------------------------------------------------------------------
    // In-place hot-path collectives: zero heap allocations once the
    // engine scratch is warm.
    // ------------------------------------------------------------------

    fn allreduce_sum_into(&mut self, buf: &mut [f64]) {
        let logical = buf.len() as f64 * F64_BYTES;
        let wire = buf.len() as f64 * self.wire_bpe();
        let timing = self.run_round(RoundOp::Sum, Give::Data(buf), true);
        buf.copy_from_slice(&self.scratch.acc);
        self.bill_blocking(CollectiveKind::Allreduce, wire, wire, wire, logical, logical, timing);
    }

    fn allreduce_max_into(&mut self, buf: &mut [f64]) {
        let logical = buf.len() as f64 * F64_BYTES;
        let wire = buf.len() as f64 * self.wire_bpe();
        let timing = self.run_round(RoundOp::Max, Give::Data(buf), true);
        buf.copy_from_slice(&self.scratch.acc);
        self.bill_blocking(CollectiveKind::Allreduce, wire, wire, wire, logical, logical, timing);
    }

    fn reduce_sum_root_into(&mut self, buf: &mut [f64]) -> bool {
        let logical = buf.len() as f64 * F64_BYTES;
        let wire = buf.len() as f64 * self.wire_bpe();
        let peers = self.size as f64 - 1.0;
        let is_root = self.rank == ROOT_RANK;
        let timing = self.run_round(RoundOp::Sum, Give::Data(buf), true);
        if is_root {
            buf.copy_from_slice(&self.scratch.acc);
        }
        let (received, logical_received) = if is_root {
            (wire * peers, logical * peers)
        } else {
            (0.0, 0.0)
        };
        self.bill_blocking(
            CollectiveKind::Reduce,
            wire,
            wire,
            received,
            logical,
            logical_received,
            timing,
        );
        is_root
    }

    fn broadcast_root_into(&mut self, buf: &mut [f64]) {
        let is_root = self.rank == ROOT_RANK;
        let sent = if is_root { buf.len() as f64 * self.wire_bpe() } else { 0.0 };
        let logical_sent = if is_root { buf.len() as f64 * F64_BYTES } else { 0.0 };
        // Under compression the root must read back its own compressed
        // payload too: its buffer holds full-width values the other ranks
        // will never see, and broadcast leaves every rank bit-identical.
        let root_copies = !self.compression.is_identity();
        // Non-root ranks assert their buffer length on the contribution
        // frame; the root validates it against its payload and poisons the
        // round on a mismatch, so every rank panics instead of deadlocking.
        let give = if is_root {
            Give::Data(&*buf)
        } else {
            Give::Expect(Some(buf.len()))
        };
        let timing = self.run_round(RoundOp::CopyRoot, give, true);
        if !is_root || root_copies {
            buf.copy_from_slice(&self.scratch.acc);
        }
        let wire = buf.len() as f64 * self.wire_bpe();
        let logical = buf.len() as f64 * F64_BYTES;
        let (received, logical_received) = if is_root { (0.0, 0.0) } else { (wire, logical) };
        self.bill_blocking(
            CollectiveKind::Broadcast,
            wire,
            sent,
            received,
            logical_sent,
            logical_received,
            timing,
        );
    }

    fn allgather_into(&mut self, data: &[f64], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            data.len() * self.size,
            "allgather_into: output buffer must hold size() * data.len() elements"
        );
        let logical = data.len() as f64 * F64_BYTES;
        let wire = data.len() as f64 * self.wire_bpe();
        let peers = self.size as f64 - 1.0;
        let rank = self.rank;
        let expected = data.len() as u64;
        let timing = self.run_round(RoundOp::Concat, Give::Data(data), true);
        if let Some(bad) = (0..self.scratch.lens.len()).find(|&r| self.scratch.lens[r] != expected) {
            let msg = format!(
                "collective-order violation: rank {bad} contributed {} elements to allgather_into, \
                 expected {expected} (as supplied by rank {rank})",
                self.scratch.lens[bad]
            );
            self.poison_and_panic(msg);
        }
        out.copy_from_slice(&self.scratch.acc);
        self.bill_blocking(
            CollectiveKind::Allgather,
            wire,
            wire,
            wire * peers,
            logical,
            logical * peers,
            timing,
        );
    }

    // ------------------------------------------------------------------
    // Split-phase collectives: the data exchange happens at `start` (the
    // round synchronises the ranks), but the *simulated clock* is only
    // advanced at `wait`, so compute issued in between overlaps with the
    // collective and only the non-overlapped tail is billed.
    // ------------------------------------------------------------------

    fn start_allreduce_sum(&mut self, data: &[f64]) -> CollectiveHandle {
        self.start_elementwise(RoundOp::Sum, Give::Data(data), data.len())
    }

    fn start_allreduce_max(&mut self, data: &[f64]) -> CollectiveHandle {
        self.start_elementwise(RoundOp::Max, Give::Data(data), data.len())
    }

    fn start_allreduce_sum_max(&mut self, data: &[f64], sum_len: usize) -> CollectiveHandle {
        assert!(
            sum_len <= data.len(),
            "start_allreduce_sum_max: sum_len {sum_len} exceeds payload length {}",
            data.len()
        );
        self.start_elementwise(RoundOp::SumMax { sum_len }, Give::Data(data), data.len())
    }

    fn reduce_sum_root_tombstone(&mut self, len: usize) -> bool {
        self.reduce_sum_root_tombstone_impl(len)
    }

    fn start_allreduce_sum_max_tombstone(&mut self, len: usize, sum_len: usize) -> CollectiveHandle {
        assert!(
            sum_len <= len,
            "start_allreduce_sum_max_tombstone: sum_len {sum_len} exceeds payload length {len}"
        );
        self.start_elementwise(RoundOp::SumMax { sum_len }, Give::Tombstone(len), len)
    }

    fn wait_into(&mut self, handle: CollectiveHandle, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            handle.result.len(),
            "wait_into: output buffer length {} != collective result length {}",
            out.len(),
            handle.result.len()
        );
        out.copy_from_slice(&handle.result);
        let start = self.elapsed;
        if handle.complete_at > self.elapsed {
            self.elapsed = handle.complete_at;
        }
        if !handle.billed {
            self.stats.record_collective_wire(
                handle.kind,
                handle.algo,
                handle.sent_bytes,
                handle.recv_bytes,
                handle.logical_sent_bytes,
                handle.logical_recv_bytes,
                self.elapsed - start,
            );
        }
        if nadmm_trace::enabled() && self.elapsed > start {
            // The un-overlapped tail of a split-phase collective: compute
            // did not fully hide it, so the wait surfaces on the timeline.
            nadmm_trace::sync_to(start);
            nadmm_trace::span_dur(
                nadmm_trace::Tag::CollectiveRound {
                    kind: trace_kind(handle.kind),
                    algo: trace_algo(handle.algo),
                },
                self.elapsed - start,
            );
        }
        self.pool.release(handle.result);
    }

    fn advance_compute(&mut self, dt: f64) {
        // The straggler factor scales compute only; communication costs are
        // charged unscaled (the fabric is shared). On a homogeneous cluster
        // the scale is exactly 1.0 and `dt * 1.0 == dt` bit-for-bit.
        let dt = dt.max(0.0) * self.compute_scale;
        self.elapsed += dt;
        self.stats.record_compute(dt);
        // Re-anchor the trace clock to the billed comm clock: on a straggler
        // the scaled charge exceeds the raw device time the kernel spans
        // already advanced, and the forward clamp absorbs the difference.
        nadmm_trace::sync_to(self.elapsed);
    }

    fn elapsed(&self) -> f64 {
        self.elapsed
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

/// A simulated cluster: spawns one thread per rank and runs a closure on each.
#[derive(Debug, Clone)]
pub struct Cluster {
    size: usize,
    network: NetworkModel,
    selector: CollectiveSelector,
    compression: Compression,
    /// Per-rank compute scales resolved from the straggler model (empty =
    /// homogeneous, every rank at exactly 1.0).
    scales: Vec<f64>,
}

impl Cluster {
    /// Creates a cluster description with `size` ranks over `network`. The
    /// collective-algorithm selection defaults to the `NADMM_COLLECTIVE_ALGO`
    /// environment override, falling back to automatic payload-size
    /// crossover selection; wire compression defaults to the
    /// `NADMM_COMPRESSION` override, falling back to the uncompressed `f64`
    /// path.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: usize, network: NetworkModel) -> Self {
        assert!(size > 0, "a cluster needs at least one rank");
        Self {
            size,
            network,
            selector: CollectiveSelector::from_env(),
            compression: Compression::from_env(),
            scales: Vec::new(),
        }
    }

    /// Overrides the collective-algorithm selection rule.
    pub fn with_collectives(mut self, selector: CollectiveSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Overrides the wire-compression policy collective payloads go through.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Attaches a deterministic straggler model: every rank's compute
    /// charges are multiplied by its resolved scale, so slow ranks arrive
    /// late at collectives and (because completion is the max over
    /// arrivals) delay everyone.
    ///
    /// # Panics
    /// Panics if the model fails [`StragglerModel::validate`] for this
    /// cluster size.
    pub fn with_straggler(mut self, model: &StragglerModel) -> Self {
        if let Err(msg) = model.validate(self.size) {
            panic!("invalid straggler model: {msg}");
        }
        self.scales = model.scales(self.size);
        self
    }

    /// The compute scale of one rank (1.0 when no straggler model is set).
    pub fn rank_scale(&self, rank: usize) -> f64 {
        self.scales.get(rank).copied().unwrap_or(1.0)
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The network model used by the cluster.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// The collective-algorithm selection rule ranks will use.
    pub fn selector(&self) -> CollectiveSelector {
        self.selector
    }

    /// The wire-compression policy ranks will apply to collective payloads.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// Builds the collective engine of one rank over an arbitrary
    /// transport — the multi-process entry point: each process connects its
    /// own [`crate::transport::tcp::TcpTransport`] and runs its rank's
    /// solver against the resulting communicator. The transport decides the
    /// rank; the cluster decides the cost model and the rank's straggler
    /// scale.
    ///
    /// # Panics
    /// Panics if the transport's size disagrees with the cluster's.
    pub fn connect(&self, transport: Box<dyn Transport>) -> ClusterComm {
        let rank = transport.rank();
        ClusterComm::new(
            self.size,
            self.network,
            self.selector,
            self.compression,
            self.rank_scale(rank),
            transport,
        )
    }

    /// Runs `f` on every rank (each on its own thread) and returns the
    /// results in rank order. The closure receives a mutable [`ThreadComm`]
    /// implementing [`Communicator`].
    ///
    /// Any rank's panic poisons the shared fabric first, so ranks blocked
    /// mid-collective panic too instead of deadlocking, and is then
    /// propagated with its original message.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut ThreadComm) -> T + Sync,
    {
        let fabric = ThreadFabric::new(self.size);
        let mut results: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for (rank, slot) in results.iter_mut().enumerate() {
                let fabric = std::sync::Arc::clone(&fabric);
                let f = &f;
                let this = &*self;
                handles.push(scope.spawn(move || {
                    let transport = fabric.endpoint(rank);
                    let mut comm = this.connect(Box::new(transport));
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm))) {
                        Ok(out) => *slot = Some(out),
                        Err(payload) => {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| format!("rank {rank} panicked"));
                            fabric.poison(&msg);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        results.into_iter().map(|r| r.expect("rank produced no result")).collect()
    }

    /// Runs `f` on every rank, handing rank `i` the `i`-th shard. This is the
    /// one copy of the "spawn ranks, hand off shards, collect in rank order"
    /// scaffolding that the experiment layer and the per-solver convenience
    /// wrappers share.
    ///
    /// # Panics
    /// Panics if the shard count does not match the cluster size.
    pub fn run_sharded<S, T, F>(&self, shards: &[S], f: F) -> Vec<T>
    where
        S: Sync,
        T: Send,
        F: Fn(&mut ThreadComm, &S) -> T + Sync,
    {
        assert_eq!(self.size, shards.len(), "need exactly one shard per rank");
        self.run(|comm| f(comm, &shards[comm.rank()]))
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CollectiveAlgorithm;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(n, NetworkModel::infiniband_100g())
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for n in [1, 2, 3, 4, 8] {
            let results = cluster(n).run(|comm| comm.allreduce_sum(&[comm.rank() as f64, 1.0]));
            let expected_first: f64 = (0..n).map(|r| r as f64).sum();
            for r in &results {
                assert_eq!(r[0], expected_first);
                assert_eq!(r[1], n as f64);
            }
        }
    }

    #[test]
    fn in_place_allreduce_matches_allocating() {
        let results = cluster(4).run(|comm| {
            let mut buf = [comm.rank() as f64, 2.0, -1.0];
            comm.allreduce_sum_into(&mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, [6.0, 8.0, -4.0]);
        }
    }

    #[test]
    fn in_place_allreduce_max() {
        let results = cluster(3).run(|comm| {
            let mut buf = [comm.rank() as f64, -(comm.rank() as f64)];
            comm.allreduce_max_into(&mut buf);
            buf
        });
        for r in results {
            assert_eq!(r, [2.0, 0.0]);
        }
    }

    #[test]
    fn allgather_returns_contributions_in_rank_order() {
        let results = cluster(4).run(|comm| comm.allgather(&[comm.rank() as f64 * 2.0]));
        for r in &results {
            assert_eq!(r.len(), 4);
            for (rank, contribution) in r.iter().enumerate() {
                assert_eq!(contribution, &vec![rank as f64 * 2.0]);
            }
        }
    }

    #[test]
    fn allgather_into_concatenates_in_rank_order() {
        let results = cluster(3).run(|comm| {
            let data = [comm.rank() as f64, 10.0 + comm.rank() as f64];
            let mut out = [0.0; 6];
            comm.allgather_into(&data, &mut out);
            out
        });
        for r in results {
            assert_eq!(r, [0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        }
    }

    #[test]
    fn gather_and_reduce_only_land_on_root() {
        let results = cluster(3).run(|comm| {
            let g = comm.gather_root(&[comm.rank() as f64]);
            let s = comm.reduce_sum_root(&[1.0]);
            (comm.rank(), g, s)
        });
        for (rank, g, s) in results {
            if rank == ROOT_RANK {
                let g = g.unwrap();
                assert_eq!(g, vec![vec![0.0], vec![1.0], vec![2.0]]);
                assert_eq!(s.unwrap(), vec![3.0]);
            } else {
                assert!(g.is_none());
                assert!(s.is_none());
            }
        }
    }

    #[test]
    fn in_place_reduce_and_broadcast_round_trip() {
        let results = cluster(4).run(|comm| {
            let mut buf = [comm.rank() as f64 + 1.0, 1.0];
            let is_root = comm.reduce_sum_root_into(&mut buf);
            if is_root {
                buf[0] *= 10.0; // transform on the root, as the z-update does
                buf[1] *= 10.0;
            }
            comm.broadcast_root_into(&mut buf);
            (is_root, buf)
        });
        for (rank, (is_root, buf)) in results.into_iter().enumerate() {
            assert_eq!(is_root, rank == ROOT_RANK);
            assert_eq!(buf, [100.0, 40.0]);
        }
    }

    #[test]
    fn broadcast_delivers_root_payload_everywhere() {
        let results = cluster(4).run(|comm| {
            if comm.is_root() {
                comm.broadcast_root(Some(&[7.0, 8.0]))
            } else {
                comm.broadcast_root(None)
            }
        });
        for r in results {
            assert_eq!(r, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn scatter_sends_each_rank_its_slice() {
        let results = cluster(3).run(|comm| {
            if comm.is_root() {
                let parts = vec![vec![0.0], vec![1.0, 1.5], vec![2.0, 2.5, 2.75]];
                comm.scatter_root(Some(&parts))
            } else {
                comm.scatter_root(None)
            }
        });
        assert_eq!(results[0], vec![0.0]);
        assert_eq!(results[1], vec![1.0, 1.5]);
        assert_eq!(results[2], vec![2.0, 2.5, 2.75]);
    }

    #[test]
    fn scalar_reductions() {
        let results = cluster(4).run(|comm| {
            let s = comm.allreduce_scalar_sum(comm.rank() as f64);
            let m = comm.allreduce_scalar_max(comm.rank() as f64);
            (s, m)
        });
        for (s, m) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 3.0);
        }
    }

    #[test]
    fn clocks_synchronise_at_collectives() {
        // Rank 1 does heavy local compute before the barrier; everyone's
        // clock must advance to at least that time afterwards.
        let results = cluster(3).run(|comm| {
            if comm.rank() == 1 {
                comm.advance_compute(5.0);
            }
            comm.barrier();
            comm.elapsed()
        });
        for t in results {
            assert!(t >= 5.0, "clock {t} did not wait for the straggler");
        }
    }

    #[test]
    fn communication_is_charged_against_the_network_model() {
        let fast = Cluster::new(4, NetworkModel::infiniband_100g())
            .run(|comm| {
                comm.allreduce_sum(&vec![1.0; 10_000]);
                comm.elapsed()
            })
            .into_iter()
            .fold(0.0f64, f64::max);
        let slow = Cluster::new(4, NetworkModel::ethernet_1g())
            .run(|comm| {
                comm.allreduce_sum(&vec![1.0; 10_000]);
                comm.elapsed()
            })
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            slow > fast,
            "1 Gbps ethernet ({slow}s) should be slower than infiniband ({fast}s)"
        );
    }

    #[test]
    fn forced_algorithms_are_bit_identical_and_cost_differently() {
        let payload: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut outcomes = Vec::new();
        for algo in CollectiveAlgorithm::ALL {
            let results = Cluster::new(5, NetworkModel::ethernet_10g())
                .with_collectives(CollectiveSelector::Force(algo))
                .run(|comm| {
                    let mut buf = payload.clone();
                    for v in buf.iter_mut() {
                        *v += comm.rank() as f64;
                    }
                    comm.allreduce_sum_into(&mut buf);
                    (buf, comm.elapsed())
                });
            outcomes.push(results);
        }
        let reference = &outcomes[0][0].0;
        for (i, results) in outcomes.iter().enumerate() {
            for (buf, _) in results {
                assert_eq!(buf, reference, "algorithm {i} deviated bit-wise");
            }
        }
        // Tree and ring charge different costs for this payload.
        let tree_t = outcomes[CollectiveAlgorithm::BinomialTree.index()][0].1;
        let ring_t = outcomes[CollectiveAlgorithm::Ring.index()][0].1;
        assert_ne!(tree_t, ring_t, "forced algorithms must charge their own cost model");
    }

    #[test]
    fn split_phase_allreduce_overlaps_compute() {
        // A large allreduce started before heavy local compute should be
        // fully hidden: elapsed == compute time, and the recorded comm time
        // for it is (close to) zero.
        let results = cluster(4).run(|comm| {
            let data = vec![1.0; 100_000];
            let handle = comm.start_allreduce_sum(&data);
            comm.advance_compute(1.0); // far longer than the collective
            let mut out = vec![0.0; 100_000];
            comm.wait_into(handle, &mut out);
            (out[0], comm.elapsed(), comm.stats().kind(CollectiveKind::Allreduce).seconds)
        });
        for (v, elapsed, ar_secs) in results {
            assert_eq!(v, 4.0);
            assert!(
                (elapsed - 1.0).abs() < 1e-9,
                "overlapped collective should be free: elapsed {elapsed}"
            );
            assert!(ar_secs < 1e-9, "overlapped allreduce billed {ar_secs}s");
        }
    }

    #[test]
    fn split_phase_allreduce_bills_the_tail_without_overlap() {
        let results = cluster(4).run(|comm| {
            let data = vec![1.0; 100_000];
            let handle = comm.start_allreduce_sum(&data);
            let mut out = vec![0.0; 100_000];
            comm.wait_into(handle, &mut out); // no compute in between
            comm.elapsed()
        });
        let expected = NetworkModel::infiniband_100g().allreduce(4, 100_000.0 * 8.0);
        for elapsed in results {
            assert!(
                (elapsed - expected).abs() < 1e-12,
                "un-overlapped split-phase must cost the full collective: {elapsed} vs {expected}"
            );
        }
    }

    #[test]
    fn fused_sum_max_allreduce_reduces_both_sections() {
        let results = cluster(3).run(|comm| {
            let r = comm.rank() as f64;
            let h = comm.start_allreduce_sum_max(&[r, 1.0, -r], 2);
            let mut out = [0.0; 3];
            comm.wait_into(h, &mut out);
            out
        });
        for r in results {
            assert_eq!(r, [3.0, 3.0, 0.0], "sum over the first two, max over the rest");
        }
    }

    #[test]
    fn split_phase_handles_reuse_pooled_buffers() {
        let results = cluster(2).run(|comm| {
            let data = [1.0, 2.0, 3.0];
            let mut out = [0.0; 3];
            for _ in 0..5 {
                let h = comm.start_allreduce_sum(&data);
                comm.wait_into(h, &mut out);
            }
            comm.comm_pool_stats()
        });
        for stats in results {
            assert_eq!(stats.acquires, 5);
            assert_eq!(stats.pool_misses, 1, "only the first handle may allocate");
            assert_eq!(stats.outstanding, 0);
        }
    }

    #[test]
    fn stats_count_collectives_and_bytes() {
        let results = cluster(2).run(|comm| {
            comm.allreduce_sum(&[1.0, 2.0, 3.0]);
            comm.barrier();
            comm.stats()
        });
        for s in results {
            assert_eq!(s.collectives, 2);
            assert!(s.bytes_sent >= 24.0);
            assert!(s.comm_time > 0.0);
            assert_eq!(s.kind(CollectiveKind::Allreduce).count, 1);
            assert_eq!(s.kind(CollectiveKind::Barrier).count, 1);
            assert!(s.kind(CollectiveKind::Allreduce).dominant_algorithm().is_some());
        }
    }

    #[test]
    fn repeated_collectives_do_not_deadlock_or_mix_generations() {
        let results = cluster(4).run(|comm| {
            let mut acc = 0.0;
            for i in 0..50 {
                let r = comm.allreduce_sum(&[i as f64 + comm.rank() as f64]);
                acc += r[0];
            }
            acc
        });
        let expected: f64 = (0..50).map(|i| 4.0 * i as f64 + 6.0).sum();
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_payload_lengths_panic_loudly() {
        cluster(2).run(|comm| {
            if comm.rank() == 0 {
                comm.allreduce_sum(&[1.0, 2.0])
            } else {
                comm.allreduce_sum(&[1.0, 2.0, 3.0])
            }
        });
    }

    #[test]
    #[should_panic]
    fn mismatched_broadcast_buffer_panics_on_every_rank_instead_of_deadlocking() {
        // The length check happens at the *collect* phase (only the root's
        // payload length defines the round); the violating rank must poison
        // the rendezvous so the surviving ranks panic instead of blocking
        // forever in the next round.
        cluster(3).run(|comm| {
            let mut buf = if comm.rank() == 1 { vec![0.0; 2] } else { vec![1.0; 4] };
            comm.broadcast_root_into(&mut buf);
            comm.barrier(); // must never be reached by any rank
        });
    }

    #[test]
    #[should_panic]
    fn mismatched_allgather_into_lengths_panic_instead_of_deadlocking() {
        cluster(2).run(|comm| {
            let data = vec![0.0; 2 + comm.rank()];
            let mut out = vec![0.0; data.len() * 2];
            comm.allgather_into(&data, &mut out);
            comm.barrier();
        });
    }

    #[test]
    #[should_panic]
    fn mismatched_collective_kinds_panic_loudly() {
        cluster(2).run(|comm| {
            if comm.rank() == 0 {
                comm.allreduce_sum(&[1.0]);
            } else {
                comm.barrier();
            }
        });
    }

    #[test]
    #[should_panic]
    fn zero_rank_cluster_is_rejected() {
        Cluster::new(0, NetworkModel::ideal());
    }

    #[test]
    fn a_designated_slow_rank_delays_every_rank() {
        let model = StragglerModel::none().with_slow_rank(1, 4.0);
        let results = cluster(3).with_straggler(&model).run(|comm| {
            comm.advance_compute(1.0);
            comm.barrier();
            (comm.straggler_scale(), comm.elapsed(), comm.stats())
        });
        assert_eq!(results[0].0, 1.0);
        assert_eq!(results[1].0, 4.0);
        for (rank, (_, elapsed, stats)) in results.iter().enumerate() {
            assert!(
                *elapsed >= 4.0,
                "rank {rank} finished at {elapsed}, before the 4× straggler arrived"
            );
            if rank == 1 {
                assert!(stats.idle_wait_time < 1e-9, "the slowest rank never waits");
            } else {
                assert!(
                    (stats.idle_wait_time - 3.0).abs() < 1e-9,
                    "rank {rank} should wait 3 s for the straggler, waited {}",
                    stats.idle_wait_time
                );
            }
            assert!(
                (stats.max_round_skew - 3.0).abs() < 1e-9,
                "round skew should be 3 s, got {}",
                stats.max_round_skew
            );
        }
    }

    #[test]
    fn zero_jitter_straggler_model_is_bit_identical_to_no_model() {
        let payload: Vec<f64> = (0..512).map(|i| (i as f64 * 0.61).cos()).collect();
        let run = |cluster: Cluster| {
            cluster.run(|comm| {
                let mut buf = payload.clone();
                for v in buf.iter_mut() {
                    *v *= comm.rank() as f64 + 0.5;
                }
                comm.advance_compute(1e-3 * (comm.rank() as f64 + 1.0));
                comm.allreduce_sum_into(&mut buf);
                (buf, comm.elapsed(), comm.stats())
            })
        };
        let plain = run(cluster(4));
        let modeled = run(cluster(4).with_straggler(&StragglerModel::none()));
        for ((a_buf, a_t, a_s), (b_buf, b_t, b_s)) in plain.iter().zip(&modeled) {
            assert_eq!(a_buf, b_buf);
            assert_eq!(a_t.to_bits(), b_t.to_bits());
            assert_eq!(a_s, b_s);
        }
    }

    #[test]
    fn jittered_fleets_are_reproducible_for_a_fixed_seed() {
        let model = StragglerModel::jitter(0.5, 1234).with_slow_rank(2, 2.0);
        let run = || {
            cluster(4).with_straggler(&model).run(|comm| {
                comm.advance_compute(0.25);
                comm.barrier();
                (comm.elapsed(), comm.stats())
            })
        };
        let a = run();
        let b = run();
        for ((at, astats), (bt, bstats)) in a.iter().zip(&b) {
            assert_eq!(at.to_bits(), bt.to_bits());
            assert_eq!(astats, bstats);
        }
        // And the fleet is genuinely uneven: someone waited.
        assert!(a.iter().any(|(_, s)| s.idle_wait_time > 0.0));
        assert!(a[0].1.max_round_skew > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid straggler model")]
    fn out_of_range_slow_rank_is_rejected_at_construction() {
        cluster(2).with_straggler(&StragglerModel::none().with_slow_rank(5, 2.0));
    }

    #[test]
    fn explicit_none_compression_is_bit_identical_to_default() {
        let payload: Vec<f64> = (0..512).map(|i| (i as f64 * 0.43).sin()).collect();
        let run = |cluster: Cluster| {
            cluster.run(|comm| {
                let mut buf = payload.clone();
                for v in buf.iter_mut() {
                    *v += comm.rank() as f64 * 0.125;
                }
                comm.allreduce_sum_into(&mut buf);
                comm.broadcast_root_into(&mut buf);
                (buf, comm.elapsed(), comm.stats())
            })
        };
        let default = run(cluster(4));
        let explicit = run(cluster(4).with_compression(Compression::None));
        for ((a_buf, a_t, a_s), (b_buf, b_t, b_s)) in default.iter().zip(&explicit) {
            assert_eq!(a_buf, b_buf);
            assert_eq!(a_t.to_bits(), b_t.to_bits());
            assert_eq!(a_s, b_s);
            // Without compression the wire carries the full logical volume.
            assert_eq!(a_s.bytes_sent, a_s.logical_bytes_sent);
            assert_eq!(a_s.bytes_received, a_s.logical_bytes_received);
            assert_eq!(a_s.wire_fraction(), 1.0);
        }
    }

    #[test]
    fn compressed_allreduce_quarters_wire_bytes_and_stays_within_f16_tolerance() {
        let len = 256usize;
        let payload: Vec<f64> = (0..len).map(|i| 2.0 + (i as f64 * 0.37).sin()).collect();
        let exact = cluster(4).run(|comm| {
            let mut buf = payload.clone();
            for v in buf.iter_mut() {
                *v *= comm.rank() as f64 + 1.0;
            }
            comm.allreduce_sum_into(&mut buf);
            buf
        });
        for compression in [Compression::F16, Compression::Bf16] {
            let rel = match compression {
                Compression::F16 => nadmm_linalg::half::F16_RELATIVE_ERROR,
                _ => nadmm_linalg::half::BF16_RELATIVE_ERROR,
            };
            let results = cluster(4).with_compression(compression).run(|comm| {
                let mut buf = payload.clone();
                for v in buf.iter_mut() {
                    *v *= comm.rank() as f64 + 1.0;
                }
                comm.allreduce_sum_into(&mut buf);
                (buf, comm.stats())
            });
            for (rank, (buf, stats)) in results.iter().enumerate() {
                for (i, (&got, &want)) in buf.iter().zip(&exact[0]).enumerate() {
                    // Each rank's contribution is quantized once before the
                    // full-width reduction, so the worst-case element error
                    // is the sum of the per-contribution rounding errors.
                    let bound: f64 = (1..=4).map(|r| (payload[i] * r as f64).abs() * rel).sum();
                    assert!(
                        (got - want).abs() <= bound,
                        "{} rank {rank} element {i}: {got} vs {want} (bound {bound})",
                        compression.name()
                    );
                }
                // 256 f64 elements: 2048 logical bytes, 512 on the wire —
                // a quarter, comfortably under the "at most half" criterion.
                assert_eq!(stats.logical_bytes_sent, len as f64 * 8.0);
                assert_eq!(stats.bytes_sent, len as f64 * 2.0);
                assert_eq!(stats.wire_fraction(), 0.25);
            }
        }
    }

    #[test]
    fn compressed_broadcast_leaves_every_rank_bit_identical_including_the_root() {
        // 0.1 is not representable in f16: the root's full-width buffer must
        // be overwritten with the wire-format values everyone else received.
        let results = cluster(3).with_compression(Compression::F16).run(|comm| {
            let mut buf = vec![0.1, 0.2, 0.3, 1.0 / 3.0];
            comm.broadcast_root_into(&mut buf);
            buf
        });
        let expected: Vec<f64> = [0.1, 0.2, 0.3, 1.0 / 3.0]
            .iter()
            .map(|&v| nadmm_linalg::half::round_f16(v))
            .collect();
        assert_ne!(expected[0].to_bits(), 0.1f64.to_bits(), "0.1 must actually quantize");
        for (rank, buf) in results.iter().enumerate() {
            for (got, want) in buf.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits(), "rank {rank} deviated from the wire payload");
            }
        }
    }

    #[test]
    fn compressed_scatter_keeps_framing_exact_and_quantizes_payloads() {
        let results = cluster(3).with_compression(Compression::F16).run(|comm| {
            if comm.is_root() {
                let parts = vec![vec![0.1], vec![0.2, 0.3], vec![1.0 / 3.0, 2.0 / 3.0, 1.0]];
                (comm.scatter_root(Some(&parts)), comm.stats())
            } else {
                (comm.scatter_root(None), comm.stats())
            }
        });
        let q = nadmm_linalg::half::round_f16;
        assert_eq!(results[0].0, vec![q(0.1)]);
        assert_eq!(results[1].0, vec![q(0.2), q(0.3)]);
        assert_eq!(results[2].0, vec![q(1.0 / 3.0), q(2.0 / 3.0), q(1.0)]);
        // The root's sent volume: 3 exact f64 length headers plus 6 payload
        // elements at 2 wire bytes each.
        assert_eq!(results[0].1.bytes_sent, 3.0 * 8.0 + 6.0 * 2.0);
        assert_eq!(results[0].1.logical_bytes_sent, 3.0 * 8.0 + 6.0 * 8.0);
    }

    #[test]
    fn compressed_collectives_cost_less_on_the_simulated_network() {
        let run = |compression| {
            Cluster::new(4, NetworkModel::ethernet_10g())
                .with_compression(compression)
                .run(|comm| {
                    let mut buf = vec![1.0; 100_000];
                    comm.allreduce_sum_into(&mut buf);
                    comm.elapsed()
                })[0]
        };
        let full = run(Compression::None);
        let half = run(Compression::F16);
        assert!(
            half < full * 0.5,
            "f16 wire payloads must cut the bandwidth-bound allreduce cost: {half} vs {full}"
        );
    }

    #[test]
    fn compressed_split_phase_bills_the_compressed_tail_and_stays_zero_alloc() {
        let results = cluster(4).with_compression(Compression::F16).run(|comm| {
            let data = vec![1.0; 100_000];
            let mut out = vec![0.0; 100_000];
            let mut elapsed_first = 0.0;
            for i in 0..5 {
                let h = comm.start_allreduce_sum(&data);
                comm.wait_into(h, &mut out);
                if i == 0 {
                    elapsed_first = comm.elapsed();
                }
            }
            (out[0], elapsed_first, comm.comm_pool_stats(), comm.stats())
        });
        let expected = NetworkModel::infiniband_100g().allreduce(4, 100_000.0 * 2.0);
        for (v, elapsed, pool, stats) in results {
            assert_eq!(v, 4.0, "1.0 is f16-exact, so the compressed sum is exact");
            assert!(
                (elapsed - expected).abs() < 1e-12,
                "split-phase tail must be billed at the wire size: {elapsed} vs {expected}"
            );
            // Each compressed split-phase op stages once and holds one
            // result buffer; only the very first acquire may allocate.
            assert_eq!(pool.acquires, 10);
            assert_eq!(pool.pool_misses, 1, "warm compressed collectives must not allocate");
            assert_eq!(pool.outstanding, 0);
            assert_eq!(stats.bytes_sent, 5.0 * 100_000.0 * 2.0);
            assert_eq!(stats.logical_bytes_sent, 5.0 * 100_000.0 * 8.0);
        }
    }

    #[test]
    fn tombstone_contributions_are_bit_identical_to_explicit_zeros() {
        // A dead rank used to deposit full zero-filled buffers; the
        // tombstone path must leave every result, clock, and stats counter
        // with the exact same bits.
        let run = |rank1_tombstones: bool| {
            cluster(3).run(move |comm| {
                let dead = comm.rank() == 1;
                let mut buf = if dead {
                    [0.0; 3]
                } else {
                    [comm.rank() as f64 + 0.25, -0.5, 1.0 / 3.0]
                };
                let is_root = if dead && rank1_tombstones {
                    comm.reduce_sum_root_tombstone(3)
                } else {
                    comm.reduce_sum_root_into(&mut buf)
                };
                let h = if dead && rank1_tombstones {
                    comm.start_allreduce_sum_max_tombstone(4, 3)
                } else {
                    let data = if dead {
                        [0.0; 4]
                    } else {
                        [comm.rank() as f64, 2.0, -1.0, 0.75]
                    };
                    comm.start_allreduce_sum_max(&data, 3)
                };
                let mut out = [0.0; 4];
                comm.wait_into(h, &mut out);
                let root_buf = if is_root { Some(buf) } else { None };
                (root_buf, out, comm.elapsed(), comm.stats())
            })
        };
        let zeros = run(false);
        let tombstoned = run(true);
        for (rank, ((a_buf, a_out, a_t, a_s), (b_buf, b_out, b_t, b_s))) in zeros.iter().zip(&tombstoned).enumerate() {
            assert_eq!(a_buf, b_buf, "rank {rank} root result deviated");
            for (x, y) in a_out.iter().zip(b_out) {
                assert_eq!(x.to_bits(), y.to_bits(), "rank {rank} sum-max result deviated");
            }
            assert_eq!(a_t.to_bits(), b_t.to_bits(), "rank {rank} clock deviated");
            assert_eq!(a_s, b_s, "rank {rank} stats deviated");
        }
    }

    #[test]
    fn gather_comm_stats_collects_every_rank_in_order() {
        let results = cluster(3).run(|comm| {
            comm.advance_compute(comm.rank() as f64 + 1.0);
            comm.barrier();
            let gathered = comm.gather_comm_stats();
            (comm.rank(), comm.stats(), gathered)
        });
        let all: Vec<CommStats> = results.iter().map(|(_, s, _)| *s).collect();
        for (rank, _, gathered) in &results {
            if *rank == ROOT_RANK {
                assert_eq!(gathered.as_ref().unwrap(), &all);
            } else {
                assert!(gathered.is_none(), "only the root collects the stats");
            }
        }
    }

    #[test]
    fn a_transport_outlives_the_engine_and_can_be_reconnected() {
        let fabric = ThreadFabric::new(1);
        let c = cluster(1);
        let mut comm = c.connect(Box::new(fabric.endpoint(0)));
        assert_eq!(comm.transport_backend(), "thread");
        comm.barrier();
        let transport = comm.into_transport();
        let mut comm = c.connect(transport);
        comm.barrier();
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.stats().collectives, 1, "a reconnected engine starts fresh");
    }
}
