//! The communicator interface the distributed solvers code against, plus the
//! trivial single-process implementation.

use crate::stats::CommStats;

/// The rank that plays the role of the paper's "master node".
pub const ROOT_RANK: usize = 0;

/// MPI-flavoured collective interface over `f64` payloads.
///
/// All collectives are *blocking* and must be called by every rank of the
/// communicator in the same order (exactly like MPI). The root of rooted
/// collectives is always [`ROOT_RANK`], matching the paper's master-node
/// formulation (Algorithm 4).
///
/// Besides moving data, implementations account simulated time: local compute
/// charged through [`Communicator::advance_compute`] and communication time
/// charged internally from the network model. [`Communicator::elapsed`]
/// exposes the per-rank simulated clock the experiment harness reads.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Whether this rank is the master/root.
    fn is_root(&self) -> bool {
        self.rank() == ROOT_RANK
    }

    /// Synchronises all ranks (and their simulated clocks).
    fn barrier(&mut self);

    /// Every rank contributes `data`; every rank receives all contributions
    /// indexed by rank.
    fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>>;

    /// Element-wise sum across ranks, result available on every rank.
    fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64>;

    /// Element-wise sum across ranks, result only on the root (None
    /// elsewhere).
    fn reduce_sum_root(&mut self, data: &[f64]) -> Option<Vec<f64>>;

    /// Gathers every rank's contribution at the root (None elsewhere).
    fn gather_root(&mut self, data: &[f64]) -> Option<Vec<Vec<f64>>>;

    /// Broadcasts the root's `data` to every rank. Non-root ranks pass
    /// `None` (their argument is ignored).
    fn broadcast_root(&mut self, data: Option<&[f64]>) -> Vec<f64>;

    /// Scatters one payload per rank from the root. Non-root ranks pass
    /// `None`.
    fn scatter_root(&mut self, parts: Option<&[Vec<f64>]>) -> Vec<f64>;

    /// Sum of a scalar across ranks, available everywhere.
    fn allreduce_scalar_sum(&mut self, v: f64) -> f64 {
        self.allreduce_sum(&[v])[0]
    }

    /// Maximum of a scalar across ranks, available everywhere.
    fn allreduce_scalar_max(&mut self, v: f64) -> f64 {
        self.allgather(&[v]).iter().map(|x| x[0]).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Charges `dt` simulated seconds of local compute to this rank.
    fn advance_compute(&mut self, dt: f64);

    /// Simulated seconds elapsed on this rank (compute + communication,
    /// including waiting for stragglers at collectives).
    fn elapsed(&self) -> f64;

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;
}

/// A size-1 communicator for single-node runs (collectives are identities and
/// cost nothing). The simulated clock still advances through
/// [`Communicator::advance_compute`], so single-node baselines report
/// comparable timings.
#[derive(Debug, Default, Clone)]
pub struct SingleProcessComm {
    elapsed: f64,
    stats: CommStats,
}

impl SingleProcessComm {
    /// Creates a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Communicator for SingleProcessComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn barrier(&mut self) {}

    fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        self.stats.record(0.0, 0.0, 0.0);
        vec![data.to_vec()]
    }

    fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64> {
        self.stats.record(0.0, 0.0, 0.0);
        data.to_vec()
    }

    fn reduce_sum_root(&mut self, data: &[f64]) -> Option<Vec<f64>> {
        self.stats.record(0.0, 0.0, 0.0);
        Some(data.to_vec())
    }

    fn gather_root(&mut self, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.stats.record(0.0, 0.0, 0.0);
        Some(vec![data.to_vec()])
    }

    fn broadcast_root(&mut self, data: Option<&[f64]>) -> Vec<f64> {
        self.stats.record(0.0, 0.0, 0.0);
        data.expect("root must provide broadcast data").to_vec()
    }

    fn scatter_root(&mut self, parts: Option<&[Vec<f64>]>) -> Vec<f64> {
        self.stats.record(0.0, 0.0, 0.0);
        let parts = parts.expect("root must provide scatter parts");
        assert_eq!(parts.len(), 1, "scatter on a single-process comm needs exactly one part");
        parts[0].clone()
    }

    fn advance_compute(&mut self, dt: f64) {
        self.elapsed += dt.max(0.0);
        self.stats.record_compute(dt.max(0.0));
    }

    fn elapsed(&self) -> f64 {
        self.elapsed
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_collectives_are_identities() {
        let mut c = SingleProcessComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert!(c.is_root());
        c.barrier();
        assert_eq!(c.allgather(&[1.0, 2.0]), vec![vec![1.0, 2.0]]);
        assert_eq!(c.allreduce_sum(&[3.0]), vec![3.0]);
        assert_eq!(c.reduce_sum_root(&[4.0]), Some(vec![4.0]));
        assert_eq!(c.gather_root(&[5.0]), Some(vec![vec![5.0]]));
        assert_eq!(c.broadcast_root(Some(&[6.0])), vec![6.0]);
        assert_eq!(c.scatter_root(Some(&[vec![7.0]])), vec![7.0]);
        assert_eq!(c.allreduce_scalar_sum(2.5), 2.5);
        assert_eq!(c.allreduce_scalar_max(-1.0), -1.0);
    }

    #[test]
    fn single_process_clock_tracks_compute() {
        let mut c = SingleProcessComm::new();
        c.advance_compute(1.25);
        c.advance_compute(0.75);
        assert!((c.elapsed() - 2.0).abs() < 1e-12);
        assert!((c.stats().compute_time - 2.0).abs() < 1e-12);
        assert_eq!(c.stats().comm_time, 0.0);
    }

    #[test]
    #[should_panic]
    fn scatter_with_wrong_arity_panics() {
        let mut c = SingleProcessComm::new();
        c.scatter_root(Some(&[vec![1.0], vec![2.0]]));
    }
}
