//! The communicator interface the distributed solvers code against, plus the
//! trivial single-process implementation.
//!
//! Three API tiers, all part of the same [`Communicator`] trait:
//!
//! 1. **Allocating collectives** (`allreduce_sum`, `broadcast_root`, …) — the
//!    seed API, convenient for cold paths and tests.
//! 2. **In-place collectives** (`allreduce_sum_into`, `broadcast_root_into`,
//!    …) — the hot-path API: the caller's buffer is both input and output and
//!    implementations stage through a pooled [`crate::CommWorkspace`], so a
//!    warm outer iteration allocates nothing.
//! 3. **Split-phase collectives** (`start_allreduce_sum` →
//!    [`Communicator::wait_into`]) — nonblocking: the result materialises in
//!    a [`CollectiveHandle`] whose completion *time* is fixed at start, and
//!    local compute issued between `start` and `wait` overlaps with the
//!    collective on the simulated clocks (only the non-overlapped tail is
//!    billed).
//!
//! Default implementations let tiers 2 and 3 fall back to tier 1, so custom
//! communicators only need the allocating core.

use crate::network::{CollectiveAlgorithm, CollectiveKind};
use crate::stats::CommStats;

/// The rank that plays the role of the paper's "master node".
pub const ROOT_RANK: usize = 0;

/// An in-flight split-phase collective: the exchanged result plus the
/// simulated time at which the collective completes cluster-wide.
///
/// Produced by the `start_*` methods of [`Communicator`] and consumed by
/// [`Communicator::wait_into`] / [`Communicator::wait`] **on the same
/// communicator that created it**. Handles must be waited in the order they
/// were started.
#[derive(Debug)]
pub struct CollectiveHandle {
    pub(crate) result: Vec<f64>,
    pub(crate) complete_at: f64,
    pub(crate) kind: CollectiveKind,
    pub(crate) algo: CollectiveAlgorithm,
    pub(crate) sent_bytes: f64,
    pub(crate) recv_bytes: f64,
    /// Full-width (pre-compression) byte counters recorded at `wait`; equal
    /// to the wire counters unless the payload was compressed.
    pub(crate) logical_sent_bytes: f64,
    pub(crate) logical_recv_bytes: f64,
    /// Whether the starting call already billed clock/stats (true for the
    /// blocking fallback; the real split-phase engine bills at `wait`).
    pub(crate) billed: bool,
}

impl CollectiveHandle {
    /// Builds a handle around an already-exchanged result (used by the
    /// default blocking fallback and custom communicator implementations).
    pub fn new(
        result: Vec<f64>,
        complete_at: f64,
        kind: CollectiveKind,
        algo: CollectiveAlgorithm,
        sent_bytes: f64,
        recv_bytes: f64,
        billed: bool,
    ) -> Self {
        Self {
            result,
            complete_at,
            kind,
            algo,
            sent_bytes,
            recv_bytes,
            logical_sent_bytes: sent_bytes,
            logical_recv_bytes: recv_bytes,
            billed,
        }
    }

    /// Overrides the full-width (pre-compression) byte counters billed at
    /// `wait`. [`CollectiveHandle::new`] defaults them to the wire counters,
    /// which is correct for uncompressed payloads.
    pub fn with_logical_bytes(mut self, sent: f64, received: f64) -> Self {
        self.logical_sent_bytes = sent;
        self.logical_recv_bytes = received;
        self
    }

    /// Number of elements of the eventual result.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// Whether the eventual result is empty.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// Simulated time at which this collective completes on every rank
    /// (latest start across ranks plus the modeled cost). A rank's own clock
    /// only advances to this at `wait`.
    pub fn complete_at(&self) -> f64 {
        self.complete_at
    }

    /// The collective kind this handle belongs to.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// The algorithm the selector chose for it.
    pub fn algorithm(&self) -> CollectiveAlgorithm {
        self.algo
    }
}

/// MPI-flavoured collective interface over `f64` payloads.
///
/// All collectives must be called by every rank of the communicator in the
/// same order (exactly like MPI); implementations detect and loudly reject
/// mismatched calls. The root of rooted collectives is always [`ROOT_RANK`],
/// matching the paper's master-node formulation (Algorithm 4).
///
/// Besides moving data, implementations account simulated time: local compute
/// charged through [`Communicator::advance_compute`] and communication time
/// charged internally from the network model. [`Communicator::elapsed`]
/// exposes the per-rank simulated clock the experiment harness reads.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Whether this rank is the master/root.
    fn is_root(&self) -> bool {
        self.rank() == ROOT_RANK
    }

    /// Synchronises all ranks (and their simulated clocks).
    fn barrier(&mut self);

    /// Every rank contributes `data`; every rank receives all contributions
    /// indexed by rank.
    fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>>;

    /// Element-wise sum across ranks, result available on every rank.
    fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64>;

    /// Element-wise sum across ranks, result only on the root (None
    /// elsewhere).
    fn reduce_sum_root(&mut self, data: &[f64]) -> Option<Vec<f64>>;

    /// Gathers every rank's contribution at the root (None elsewhere).
    fn gather_root(&mut self, data: &[f64]) -> Option<Vec<Vec<f64>>>;

    /// Broadcasts the root's `data` to every rank. Non-root ranks pass
    /// `None` (their argument is ignored).
    fn broadcast_root(&mut self, data: Option<&[f64]>) -> Vec<f64>;

    /// Scatters one payload per rank from the root. Non-root ranks pass
    /// `None`.
    fn scatter_root(&mut self, parts: Option<&[Vec<f64>]>) -> Vec<f64>;

    // ------------------------------------------------------------------
    // In-place collectives (the hot-path API). Defaults delegate to the
    // allocating methods; the thread-backed communicator overrides them
    // with zero-allocation implementations.
    // ------------------------------------------------------------------

    /// Element-wise sum across ranks, in place: `buf` is this rank's
    /// contribution on entry and the global sum on exit. Every rank must
    /// supply the same length.
    fn allreduce_sum_into(&mut self, buf: &mut [f64]) {
        let out = self.allreduce_sum(buf);
        buf.copy_from_slice(&out);
    }

    /// Element-wise max across ranks, in place.
    fn allreduce_max_into(&mut self, buf: &mut [f64]) {
        let all = self.allgather(buf);
        for (i, slot) in buf.iter_mut().enumerate() {
            *slot = all.iter().map(|c| c[i]).fold(f64::NEG_INFINITY, f64::max);
        }
    }

    /// Element-wise sum to the root, in place: on the root `buf` holds the
    /// global sum on exit (returns `true`); elsewhere the contents of `buf`
    /// are unspecified afterwards (returns `false`).
    fn reduce_sum_root_into(&mut self, buf: &mut [f64]) -> bool {
        if let Some(out) = self.reduce_sum_root(buf) {
            buf.copy_from_slice(&out);
            true
        } else {
            false
        }
    }

    /// Broadcast from the root, in place: the root's `buf` is the payload,
    /// every other rank's same-length `buf` is overwritten with it.
    fn broadcast_root_into(&mut self, buf: &mut [f64]) {
        let out = if self.is_root() {
            self.broadcast_root(Some(&*buf))
        } else {
            self.broadcast_root(None)
        };
        buf.copy_from_slice(&out);
    }

    /// A dead rank's stand-in for [`Communicator::reduce_sum_root_into`]:
    /// contributes `len` exact zeros without owning a buffer. Billing and
    /// results are identical to reducing an explicit zero-filled buffer (the
    /// default does exactly that); implementations may skip the payload
    /// entirely — a tombstone — as long as reports stay bit-identical.
    /// Returns whether this rank is the root (whose reduced result is
    /// discarded; a dead rank never reads it).
    fn reduce_sum_root_tombstone(&mut self, len: usize) -> bool {
        let mut zeros = vec![0.0; len];
        self.reduce_sum_root_into(&mut zeros)
    }

    /// A dead rank's stand-in for [`Communicator::start_allreduce_sum_max`]:
    /// contributes `len` exact zeros (summed over the first `sum_len`,
    /// maxed over the rest) without owning a buffer.
    fn start_allreduce_sum_max_tombstone(&mut self, len: usize, sum_len: usize) -> CollectiveHandle {
        let zeros = vec![0.0; len];
        self.start_allreduce_sum_max(&zeros, sum_len)
    }

    /// Allgather into a caller buffer: `out` (length `size() * data.len()`)
    /// receives every rank's contribution concatenated in rank order.
    fn allgather_into(&mut self, data: &[f64], out: &mut [f64]) {
        assert_eq!(
            out.len(),
            data.len() * self.size(),
            "allgather_into: output buffer must hold size() * data.len() elements"
        );
        let all = self.allgather(data);
        for (chunk, contrib) in out.chunks_mut(data.len()).zip(&all) {
            chunk.copy_from_slice(contrib);
        }
    }

    // ------------------------------------------------------------------
    // Split-phase (nonblocking) collectives. The default implementations
    // complete eagerly — correct, but with no overlap credit; the
    // thread-backed communicator overrides them with true split-phase
    // billing.
    // ------------------------------------------------------------------

    /// Starts a nonblocking element-wise sum allreduce of `data`. The result
    /// becomes visible (and the clock charged) at
    /// [`Communicator::wait_into`].
    fn start_allreduce_sum(&mut self, data: &[f64]) -> CollectiveHandle {
        let result = self.allreduce_sum(data);
        CollectiveHandle::new(
            result,
            self.elapsed(),
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::Naive,
            0.0,
            0.0,
            true,
        )
    }

    /// Starts a nonblocking element-wise max allreduce of `data`.
    fn start_allreduce_max(&mut self, data: &[f64]) -> CollectiveHandle {
        let mut buf = data.to_vec();
        self.allreduce_max_into(&mut buf);
        CollectiveHandle::new(
            buf,
            self.elapsed(),
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::Naive,
            0.0,
            0.0,
            true,
        )
    }

    /// Starts a nonblocking mixed allreduce of `data`: the first `sum_len`
    /// elements are reduced by sum, the rest by max — one collective instead
    /// of two, the way MPI codes pack instrumentation reductions into a
    /// single user-defined-op allreduce. The default falls back to two
    /// blocking collectives.
    fn start_allreduce_sum_max(&mut self, data: &[f64], sum_len: usize) -> CollectiveHandle {
        assert!(
            sum_len <= data.len(),
            "start_allreduce_sum_max: sum_len {sum_len} exceeds payload length {}",
            data.len()
        );
        let mut buf = data.to_vec();
        let sums = self.allreduce_sum(&data[..sum_len]);
        buf[..sum_len].copy_from_slice(&sums);
        self.allreduce_max_into(&mut buf[sum_len..]);
        CollectiveHandle::new(
            buf,
            self.elapsed(),
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::Naive,
            0.0,
            0.0,
            true,
        )
    }

    /// Completes a split-phase collective: copies the result into `out`
    /// (same length). Implementations with true split-phase billing (like
    /// the thread-backed communicator) advance this rank's clock to the
    /// collective's completion time if it has not naturally passed it (the
    /// overlap credit) and bill the non-overlapped tail.
    ///
    /// This default only handles *already-billed* handles (the blocking
    /// `start_*` fallbacks above bill at start). An implementation that
    /// overrides a `start_*` method to defer billing (`billed = false`) must
    /// override `wait_into` as well — the default panics on such a handle
    /// rather than silently dropping its time and stats.
    fn wait_into(&mut self, handle: CollectiveHandle, out: &mut [f64]) {
        assert!(
            handle.billed,
            "wait_into: the default implementation received an unbilled split-phase handle; \
             a communicator that defers billing to wait must override wait_into"
        );
        assert_eq!(
            out.len(),
            handle.result.len(),
            "wait_into: output buffer length {} != collective result length {}",
            out.len(),
            handle.result.len()
        );
        out.copy_from_slice(&handle.result);
    }

    /// Completes a split-phase collective, returning the result by value.
    fn wait(&mut self, handle: CollectiveHandle) -> Vec<f64> {
        let mut out = vec![0.0; handle.result.len()];
        self.wait_into(handle, &mut out);
        out
    }

    /// Sum of a scalar across ranks, available everywhere.
    fn allreduce_scalar_sum(&mut self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_sum_into(&mut buf);
        buf[0]
    }

    /// Maximum of a scalar across ranks, available everywhere.
    fn allreduce_scalar_max(&mut self, v: f64) -> f64 {
        let mut buf = [v];
        self.allreduce_max_into(&mut buf);
        buf[0]
    }

    /// Charges `dt` simulated seconds of local compute to this rank.
    fn advance_compute(&mut self, dt: f64);

    /// Simulated seconds elapsed on this rank (compute + communication,
    /// including waiting for stragglers at collectives).
    fn elapsed(&self) -> f64;

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;
}

/// A size-1 communicator for single-node runs (collectives are identities and
/// cost nothing). The simulated clock still advances through
/// [`Communicator::advance_compute`], so single-node baselines report
/// comparable timings.
#[derive(Debug, Default, Clone)]
pub struct SingleProcessComm {
    elapsed: f64,
    stats: CommStats,
}

impl SingleProcessComm {
    /// Creates a fresh single-rank communicator.
    pub fn new() -> Self {
        Self::default()
    }

    fn note(&mut self, kind: CollectiveKind) {
        self.stats.record_collective(kind, CollectiveAlgorithm::Naive, 0.0, 0.0, 0.0);
    }
}

impl Communicator for SingleProcessComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn barrier(&mut self) {}

    fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        self.note(CollectiveKind::Allgather);
        vec![data.to_vec()]
    }

    fn allreduce_sum(&mut self, data: &[f64]) -> Vec<f64> {
        self.note(CollectiveKind::Allreduce);
        data.to_vec()
    }

    fn reduce_sum_root(&mut self, data: &[f64]) -> Option<Vec<f64>> {
        self.note(CollectiveKind::Reduce);
        Some(data.to_vec())
    }

    fn gather_root(&mut self, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        self.note(CollectiveKind::Gather);
        Some(vec![data.to_vec()])
    }

    fn broadcast_root(&mut self, data: Option<&[f64]>) -> Vec<f64> {
        self.note(CollectiveKind::Broadcast);
        data.expect("root must provide broadcast data").to_vec()
    }

    fn scatter_root(&mut self, parts: Option<&[Vec<f64>]>) -> Vec<f64> {
        self.note(CollectiveKind::Scatter);
        let parts = parts.expect("root must provide scatter parts");
        assert_eq!(parts.len(), 1, "scatter on a single-process comm needs exactly one part");
        parts[0].clone()
    }

    // In-place collectives are identities on one rank: no copies, no
    // allocations.
    fn allreduce_sum_into(&mut self, _buf: &mut [f64]) {
        self.note(CollectiveKind::Allreduce);
    }

    fn allreduce_max_into(&mut self, _buf: &mut [f64]) {
        self.note(CollectiveKind::Allreduce);
    }

    fn reduce_sum_root_into(&mut self, _buf: &mut [f64]) -> bool {
        self.note(CollectiveKind::Reduce);
        true
    }

    fn broadcast_root_into(&mut self, _buf: &mut [f64]) {
        self.note(CollectiveKind::Broadcast);
    }

    fn allgather_into(&mut self, data: &[f64], out: &mut [f64]) {
        self.note(CollectiveKind::Allgather);
        assert_eq!(out.len(), data.len(), "allgather_into on one rank copies the contribution");
        out.copy_from_slice(data);
    }

    fn start_allreduce_sum_max(&mut self, data: &[f64], sum_len: usize) -> CollectiveHandle {
        assert!(sum_len <= data.len());
        self.note(CollectiveKind::Allreduce);
        CollectiveHandle::new(
            data.to_vec(),
            self.elapsed,
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::Naive,
            0.0,
            0.0,
            true,
        )
    }

    fn advance_compute(&mut self, dt: f64) {
        self.elapsed += dt.max(0.0);
        self.stats.record_compute(dt.max(0.0));
    }

    fn elapsed(&self) -> f64 {
        self.elapsed
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_collectives_are_identities() {
        let mut c = SingleProcessComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert!(c.is_root());
        c.barrier();
        assert_eq!(c.allgather(&[1.0, 2.0]), vec![vec![1.0, 2.0]]);
        assert_eq!(c.allreduce_sum(&[3.0]), vec![3.0]);
        assert_eq!(c.reduce_sum_root(&[4.0]), Some(vec![4.0]));
        assert_eq!(c.gather_root(&[5.0]), Some(vec![vec![5.0]]));
        assert_eq!(c.broadcast_root(Some(&[6.0])), vec![6.0]);
        assert_eq!(c.scatter_root(Some(&[vec![7.0]])), vec![7.0]);
        assert_eq!(c.allreduce_scalar_sum(2.5), 2.5);
        assert_eq!(c.allreduce_scalar_max(-1.0), -1.0);
    }

    #[test]
    fn single_process_in_place_collectives_are_identities() {
        let mut c = SingleProcessComm::new();
        let mut buf = [1.0, 2.0];
        c.allreduce_sum_into(&mut buf);
        assert_eq!(buf, [1.0, 2.0]);
        assert!(c.reduce_sum_root_into(&mut buf));
        c.broadcast_root_into(&mut buf);
        assert_eq!(buf, [1.0, 2.0]);
        let mut out = [0.0, 0.0];
        c.allgather_into(&[3.0, 4.0], &mut out);
        assert_eq!(out, [3.0, 4.0]);
        assert_eq!(c.stats().kind(crate::network::CollectiveKind::Allreduce).count, 1);
    }

    #[test]
    fn single_process_split_phase_completes_eagerly() {
        let mut c = SingleProcessComm::new();
        let h = c.start_allreduce_sum(&[5.0, 6.0]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.kind(), CollectiveKind::Allreduce);
        let mut out = [0.0, 0.0];
        c.wait_into(h, &mut out);
        assert_eq!(out, [5.0, 6.0]);
        let h = c.start_allreduce_max(&[-3.0]);
        assert_eq!(c.wait(h), vec![-3.0]);
    }

    #[test]
    fn single_process_clock_tracks_compute() {
        let mut c = SingleProcessComm::new();
        c.advance_compute(1.25);
        c.advance_compute(0.75);
        assert!((c.elapsed() - 2.0).abs() < 1e-12);
        assert!((c.stats().compute_time - 2.0).abs() < 1e-12);
        assert_eq!(c.stats().comm_time, 0.0);
    }

    #[test]
    #[should_panic]
    fn scatter_with_wrong_arity_panics() {
        let mut c = SingleProcessComm::new();
        c.scatter_root(Some(&[vec![1.0], vec![2.0]]));
    }
}
