//! Latency/bandwidth network cost model with a pluggable collective-algorithm
//! layer.
//!
//! Every collective can be executed by several classical algorithms whose
//! α+β costs differ in how they trade *latency rounds* against *bandwidth
//! volume*: a binomial tree finishes in ⌈log₂N⌉ rounds but re-sends the whole
//! payload at every level, while a ring allreduce needs 2(N−1) rounds but
//! moves only 2(N−1)/N of the payload per rank — bandwidth-optimal, and the
//! winner for the large d×k parameter vectors the Newton-ADMM outer loop
//! reduces. [`NetworkModel::select`] picks the cheapest algorithm for a given
//! payload size (the *crossover* rule), unless a [`CollectiveSelector`]
//! forces one (configurable per [`crate::Cluster`] or via the
//! `NADMM_COLLECTIVE_ALGO` environment variable).
//!
//! The algorithm choice only affects *simulated cost*: the data path of the
//! in-process rendezvous is shared, so every algorithm is bit-identical by
//! construction (and the cluster test-suite asserts it).

use serde::{Deserialize, Serialize};

/// Environment variable overriding the collective-algorithm selection
/// (`naive`, `tree`, `ring`, `rhd`, or `auto`).
pub const COLLECTIVE_ALGO_ENV: &str = "NADMM_COLLECTIVE_ALGO";

/// Environment variable overriding the wire compression of collective
/// payloads (`none`, `f16`, or `bf16`).
pub const COMPRESSION_ENV: &str = "NADMM_COMPRESSION";

/// The collective operations the communicator layer charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Synchronisation only, no payload.
    Barrier,
    /// Root's payload delivered to every rank.
    Broadcast,
    /// Element-wise reduction landing on the root.
    Reduce,
    /// Element-wise reduction available on every rank.
    Allreduce,
    /// Per-rank payloads collected at the root.
    Gather,
    /// Per-rank payloads distributed from the root.
    Scatter,
    /// Per-rank payloads collected on every rank.
    Allgather,
}

impl CollectiveKind {
    /// Number of collective kinds (size of per-kind stat arrays).
    pub const COUNT: usize = 7;

    /// All kinds, in [`CollectiveKind::index`] order.
    pub const ALL: [CollectiveKind; Self::COUNT] = [
        CollectiveKind::Barrier,
        CollectiveKind::Broadcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Gather,
        CollectiveKind::Scatter,
        CollectiveKind::Allgather,
    ];

    /// Stable index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            CollectiveKind::Barrier => 0,
            CollectiveKind::Broadcast => 1,
            CollectiveKind::Reduce => 2,
            CollectiveKind::Allreduce => 3,
            CollectiveKind::Gather => 4,
            CollectiveKind::Scatter => 5,
            CollectiveKind::Allgather => 6,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Gather => "gather",
            CollectiveKind::Scatter => "scatter",
            CollectiveKind::Allgather => "allgather",
        }
    }
}

/// The algorithm executing a collective (cost-model level; the simulated data
/// path is identical for all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveAlgorithm {
    /// Star topology through the root: `N−1` sequential point-to-points.
    Naive,
    /// Binomial tree: `⌈log₂N⌉` rounds, full payload per round.
    BinomialTree,
    /// Ring (reduce-scatter + allgather): `2(N−1)` rounds, bandwidth-optimal
    /// `2(N−1)/N` payload fractions.
    Ring,
    /// Recursive halving-doubling (butterfly): `2⌈log₂N⌉` rounds at the
    /// bandwidth-optimal volume; non-power-of-two rank counts pay one extra
    /// full exchange to fold the remainder ranks in.
    RecursiveHalvingDoubling,
}

impl CollectiveAlgorithm {
    /// Number of algorithms (size of per-algorithm stat arrays).
    pub const COUNT: usize = 4;

    /// All algorithms, in [`CollectiveAlgorithm::index`] order. Ties in the
    /// automatic selection resolve to the earliest entry.
    pub const ALL: [CollectiveAlgorithm; Self::COUNT] = [
        CollectiveAlgorithm::Naive,
        CollectiveAlgorithm::BinomialTree,
        CollectiveAlgorithm::Ring,
        CollectiveAlgorithm::RecursiveHalvingDoubling,
    ];

    /// Stable index into per-algorithm arrays.
    pub fn index(self) -> usize {
        match self {
            CollectiveAlgorithm::Naive => 0,
            CollectiveAlgorithm::BinomialTree => 1,
            CollectiveAlgorithm::Ring => 2,
            CollectiveAlgorithm::RecursiveHalvingDoubling => 3,
        }
    }

    /// Short name used in reports and the env override.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgorithm::Naive => "naive",
            CollectiveAlgorithm::BinomialTree => "tree",
            CollectiveAlgorithm::Ring => "ring",
            CollectiveAlgorithm::RecursiveHalvingDoubling => "rhd",
        }
    }

    /// Parses a [`CollectiveAlgorithm::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "naive" | "star" => Some(CollectiveAlgorithm::Naive),
            "tree" | "binomial" => Some(CollectiveAlgorithm::BinomialTree),
            "ring" => Some(CollectiveAlgorithm::Ring),
            "rhd" | "halving-doubling" | "butterfly" => Some(CollectiveAlgorithm::RecursiveHalvingDoubling),
            _ => None,
        }
    }
}

/// How a communicator picks the algorithm for each collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CollectiveSelector {
    /// Pick the cheapest algorithm for the payload size (crossover rule).
    #[default]
    Auto,
    /// Always use one algorithm (ablations / the bit-identity tests).
    Force(CollectiveAlgorithm),
}

impl CollectiveSelector {
    /// Parses `auto` or a [`CollectiveAlgorithm::parse`] name.
    pub fn parse(s: &str) -> Option<Self> {
        if s.trim().eq_ignore_ascii_case("auto") {
            Some(CollectiveSelector::Auto)
        } else {
            CollectiveAlgorithm::parse(s).map(CollectiveSelector::Force)
        }
    }

    /// Reads the [`COLLECTIVE_ALGO_ENV`] override, defaulting to `Auto` when
    /// the variable is unset.
    ///
    /// # Panics
    /// Panics when the variable is set to an unparseable value, naming the
    /// bad value and the accepted spellings. A typo in
    /// `NADMM_COLLECTIVE_ALGO` used to silently fall back to `Auto`, which
    /// turns an intended ablation into a wrong experiment — failing loudly
    /// is the only safe behaviour.
    pub fn from_env() -> Self {
        match std::env::var(COLLECTIVE_ALGO_ENV) {
            Ok(raw) => Self::parse_env_value(&raw),
            Err(std::env::VarError::NotPresent) => Self::default(),
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!("{COLLECTIVE_ALGO_ENV} is set to a non-UTF-8 value ({raw:?}); {ACCEPTED_SPELLINGS}")
            }
        }
    }

    /// Parses the value of the [`COLLECTIVE_ALGO_ENV`] override, panicking
    /// with the accepted spellings when it does not name a selection.
    pub fn parse_env_value(raw: &str) -> Self {
        Self::parse(raw)
            .unwrap_or_else(|| panic!("{COLLECTIVE_ALGO_ENV}='{raw}' does not name a collective selection; {ACCEPTED_SPELLINGS}"))
    }
}

/// The spellings [`CollectiveSelector::parse`] accepts, for error messages.
const ACCEPTED_SPELLINGS: &str = "accepted values: auto, naive (star), tree (binomial), ring, rhd (halving-doubling, butterfly)";

/// Wire compression applied to collective payloads (gradient/parameter
/// compression).
///
/// Under compression every rank rounds its contribution through the reduced
/// wire format before it is exchanged — exactly the compress→send→decompress
/// pipeline of gradient-compression allreduce — and the reduction itself runs
/// at full width on the decompressed values, so the *result* is always a
/// full-width `f64` vector. Every rank observes the identical compressed
/// payloads (including its own contribution), which keeps the consensus
/// state bit-identical across ranks.
///
/// The on-wire footprint is what the network model sees: payload bytes are
/// billed at [`Compression::wire_bytes_per_element`], so compressed
/// collectives cost less and their tree↔ring crossover payloads shift
/// accordingly. [`Compression::None`] bills the full 8 bytes per `f64` and
/// leaves every payload untouched — bit-identical to the uncompressed
/// communicator by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// Full-width `f64` on the wire (the default; bit-identical data path).
    #[default]
    None,
    /// IEEE 754 binary16 on the wire: 2 bytes per element, ~3 decimal digits.
    F16,
    /// bfloat16 on the wire: 2 bytes per element, f32's exponent range at
    /// ~2 decimal digits.
    Bf16,
}

impl Compression {
    /// All policies, for exhaustive tests.
    pub const ALL: [Compression; 3] = [Compression::None, Compression::F16, Compression::Bf16];

    /// The spellings [`Compression::parse`] accepts, for error messages.
    pub const ACCEPTED_SPELLINGS: &'static str = "none (off, f64), f16 (fp16, half), bf16 (bfloat16)";

    /// Short name used in reports, specs, and the env override.
    pub fn name(self) -> &'static str {
        match self {
            Compression::None => "none",
            Compression::F16 => "f16",
            Compression::Bf16 => "bf16",
        }
    }

    /// Parses a [`Compression::name`] or one of its aliases
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "off" | "f64" => Some(Compression::None),
            "f16" | "fp16" | "half" => Some(Compression::F16),
            "bf16" | "bfloat16" => Some(Compression::Bf16),
            _ => None,
        }
    }

    /// Bytes one payload element occupies on the simulated wire (8 for the
    /// uncompressed `f64` path, 2 for the half-precision formats). This is
    /// the size the network model bills and the crossover rule sees.
    pub fn wire_bytes_per_element(self) -> f64 {
        match self {
            Compression::None => 8.0,
            Compression::F16 | Compression::Bf16 => 2.0,
        }
    }

    /// Rounds one value through the wire format (identity for
    /// [`Compression::None`]).
    pub fn round(self, x: f64) -> f64 {
        match self {
            Compression::None => x,
            Compression::F16 => nadmm_linalg::half::round_f16(x),
            Compression::Bf16 => nadmm_linalg::half::round_bf16(x),
        }
    }

    /// Whether payloads cross the wire untouched.
    pub fn is_identity(self) -> bool {
        self == Compression::None
    }

    /// Reads the [`COMPRESSION_ENV`] override, defaulting to
    /// [`Compression::None`] when the variable is unset.
    ///
    /// # Panics
    /// Panics when the variable is set to an unparseable value, naming the
    /// bad value and the accepted spellings — a typo must not silently run
    /// the uncompressed experiment (the `NADMM_COLLECTIVE_ALGO` parser
    /// applies the same rule).
    pub fn from_env() -> Self {
        match std::env::var(COMPRESSION_ENV) {
            Ok(raw) => Self::parse_env_value(&raw),
            Err(std::env::VarError::NotPresent) => Self::default(),
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!(
                    "{COMPRESSION_ENV} is set to a non-UTF-8 value ({raw:?}); accepted values: {}",
                    Self::ACCEPTED_SPELLINGS
                )
            }
        }
    }

    /// Parses the value of the [`COMPRESSION_ENV`] override, panicking with
    /// the accepted spellings when it does not name a policy.
    pub fn parse_env_value(raw: &str) -> Self {
        Self::parse(raw).unwrap_or_else(|| {
            panic!(
                "{COMPRESSION_ENV}='{raw}' does not name a compression policy; accepted values: {}",
                Self::ACCEPTED_SPELLINGS
            )
        })
    }
}

impl Serialize for Compression {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for Compression {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            // Pre-compression specs omit the field entirely; the shim hands
            // deserializers `Null` for missing keys.
            serde::Value::Null => Ok(Compression::default()),
            serde::Value::Str(s) => Compression::parse(s).ok_or_else(|| {
                serde::DeError(format!(
                    "`{s}` does not name a compression policy; accepted values: {}",
                    Compression::ACCEPTED_SPELLINGS
                ))
            }),
            other => Err(serde::DeError::expected("compression string", other)),
        }
    }
}

/// α+β cost model of the interconnect.
///
/// A point-to-point message of `b` bytes costs `latency + b / bandwidth`
/// seconds; collectives are charged per algorithm through
/// [`NetworkModel::collective_cost`] / [`NetworkModel::select`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Human-readable name of the fabric.
    pub name: &'static str,
    /// One-way message latency in seconds (α).
    pub latency: f64,
    /// Link bandwidth in bytes per second (1/β).
    pub bandwidth: f64,
}

impl NetworkModel {
    /// 100 Gbps Infiniband (the paper's cluster): ~1.5 µs latency,
    /// 100 Gbit/s ≈ 12.5 GB/s.
    pub fn infiniband_100g() -> Self {
        Self {
            name: "infiniband-100g",
            latency: 1.5e-6,
            bandwidth: 12.5e9,
        }
    }

    /// 10 Gbps Ethernet: ~50 µs latency, 1.25 GB/s. Used in the "slower
    /// interconnect" ablation the paper discusses qualitatively.
    pub fn ethernet_10g() -> Self {
        Self {
            name: "ethernet-10g",
            latency: 50.0e-6,
            bandwidth: 1.25e9,
        }
    }

    /// 1 Gbps Ethernet: ~100 µs latency, 125 MB/s — the "high latency, low
    /// bandwidth" environment where single-round methods shine.
    pub fn ethernet_1g() -> Self {
        Self {
            name: "ethernet-1g",
            latency: 100.0e-6,
            bandwidth: 125.0e6,
        }
    }

    /// An idealised zero-cost network (useful to isolate compute behaviour).
    pub fn ideal() -> Self {
        Self {
            name: "ideal",
            latency: 0.0,
            bandwidth: f64::INFINITY,
        }
    }

    fn per_byte(&self, bytes: f64) -> f64 {
        if self.bandwidth.is_infinite() {
            0.0
        } else {
            bytes / self.bandwidth
        }
    }

    /// Number of tree rounds for `n` participants.
    pub fn tree_depth(n: usize) -> f64 {
        if n <= 1 {
            0.0
        } else {
            (n as f64).log2().ceil()
        }
    }

    /// The `(latency_multiplier, bandwidth_multiplier)` of one collective:
    /// `cost = lm·α + bm·(bytes/B)`. Both terms are affine in the payload,
    /// which is what makes the crossover payload size between two algorithms
    /// solvable in closed form ([`NetworkModel::crossover_bytes`]).
    ///
    /// With `L = ⌈log₂N⌉`, `m = N−1`, `r = (N−1)/N`:
    ///
    /// | kind       | naive      | tree       | ring            | rhd            |
    /// |------------|------------|------------|-----------------|----------------|
    /// | barrier    | (2m, 0)    | (2L, 0)    | (N, 0)          | (L, 0)         |
    /// | broadcast  | (m, m)     | (L, L)     | (L+m, 2r)       | (2L, 2r)       |
    /// | reduce     | (m, m)     | (L, L)     | (L+m, 2r)       | (2L, 2r)       |
    /// | allreduce  | (2m, 2m)   | (2L, 2L)   | (2m, 2r)        | (2L, 2r) [^p2] |
    /// | gather     | (m, m)     | (L, m)     | (m, m)          | (L, m)         |
    /// | scatter    | (m, m)     | (L, m)     | (m, m)          | (L, m)         |
    /// | allgather  | (m, m)     | (2L, m+Ln) | (m, m)          | (L, m)         |
    ///
    /// [^p2]: non-power-of-two rank counts add one full exchange `(2, 2)`.
    pub fn collective_terms(kind: CollectiveKind, algo: CollectiveAlgorithm, n: usize) -> (f64, f64) {
        if n <= 1 {
            return (0.0, 0.0);
        }
        let l = Self::tree_depth(n);
        let m = n as f64 - 1.0;
        let r = m / n as f64;
        use CollectiveAlgorithm::*;
        use CollectiveKind::*;
        match (kind, algo) {
            (Barrier, Naive) => (2.0 * m, 0.0),
            (Barrier, BinomialTree) => (2.0 * l, 0.0),
            (Barrier, Ring) => (n as f64, 0.0),
            (Barrier, RecursiveHalvingDoubling) => (l, 0.0),

            (Broadcast | Reduce, Naive) => (m, m),
            (Broadcast | Reduce, BinomialTree) => (l, l),
            (Broadcast | Reduce, Ring) => (l + m, 2.0 * r),
            (Broadcast | Reduce, RecursiveHalvingDoubling) => (2.0 * l, 2.0 * r),

            (Allreduce, Naive) => (2.0 * m, 2.0 * m),
            (Allreduce, BinomialTree) => (2.0 * l, 2.0 * l),
            (Allreduce, Ring) => (2.0 * m, 2.0 * r),
            (Allreduce, RecursiveHalvingDoubling) => {
                if n.is_power_of_two() {
                    (2.0 * l, 2.0 * r)
                } else {
                    // Remainder ranks fold in/out with one extra exchange.
                    (2.0 * l + 2.0, 2.0 * r + 2.0)
                }
            }

            (Gather | Scatter, Naive | Ring) => (m, m),
            (Gather | Scatter, BinomialTree | RecursiveHalvingDoubling) => (l, m),

            (Allgather, Naive | Ring) => (m, m),
            (Allgather, BinomialTree) => (2.0 * l, m + l * n as f64),
            (Allgather, RecursiveHalvingDoubling) => (l, m),
        }
    }

    /// Cost in seconds of one collective of `bytes` payload per rank over `n`
    /// ranks with a fixed algorithm.
    pub fn collective_cost(&self, kind: CollectiveKind, algo: CollectiveAlgorithm, n: usize, bytes: f64) -> f64 {
        let (lm, bm) = Self::collective_terms(kind, algo, n);
        lm * self.latency + bm * self.per_byte(bytes)
    }

    /// Picks the algorithm for one collective: the forced one under
    /// [`CollectiveSelector::Force`], otherwise the cheapest for this payload
    /// (ties resolve to the earliest entry of [`CollectiveAlgorithm::ALL`]).
    /// Returns the algorithm and its cost in seconds.
    pub fn select(&self, kind: CollectiveKind, n: usize, bytes: f64, selector: CollectiveSelector) -> (CollectiveAlgorithm, f64) {
        match selector {
            CollectiveSelector::Force(algo) => (algo, self.collective_cost(kind, algo, n, bytes)),
            CollectiveSelector::Auto => {
                let mut best = (CollectiveAlgorithm::Naive, f64::INFINITY);
                for algo in CollectiveAlgorithm::ALL {
                    let cost = self.collective_cost(kind, algo, n, bytes);
                    if cost < best.1 {
                        best = (algo, cost);
                    }
                }
                best
            }
        }
    }

    /// The payload size (bytes) above which `challenger` becomes cheaper than
    /// `incumbent` for this collective, if the two cost lines cross at a
    /// positive payload. `None` when they never cross (one dominates).
    pub fn crossover_bytes(
        &self,
        kind: CollectiveKind,
        incumbent: CollectiveAlgorithm,
        challenger: CollectiveAlgorithm,
        n: usize,
    ) -> Option<f64> {
        if self.bandwidth.is_infinite() {
            return None;
        }
        let (la, ba) = Self::collective_terms(kind, incumbent, n);
        let (lb, bb) = Self::collective_terms(kind, challenger, n);
        // la·α + ba·x/B = lb·α + bb·x/B  ⇒  x = α·B·(lb − la)/(ba − bb).
        if ba <= bb || lb <= la {
            return None; // challenger never strictly wins on bandwidth
        }
        Some(self.latency * self.bandwidth * (lb - la) / (ba - bb))
    }

    /// Cost of a point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.latency + self.per_byte(bytes)
    }

    /// Cost of a barrier among `n` ranks (auto-selected algorithm).
    pub fn barrier(&self, n: usize) -> f64 {
        self.select(CollectiveKind::Barrier, n, 0.0, CollectiveSelector::Auto).1
    }

    /// Cost of a broadcast of `bytes` from the root to `n` ranks
    /// (auto-selected algorithm).
    pub fn broadcast(&self, n: usize, bytes: f64) -> f64 {
        self.select(CollectiveKind::Broadcast, n, bytes, CollectiveSelector::Auto).1
    }

    /// Cost of gathering `bytes` from each of `n` ranks at the root
    /// (bottlenecked by the root's incoming link; auto-selected algorithm).
    pub fn gather(&self, n: usize, bytes: f64) -> f64 {
        self.select(CollectiveKind::Gather, n, bytes, CollectiveSelector::Auto).1
    }

    /// Cost of scattering per-rank payloads of `bytes` from the root
    /// (auto-selected algorithm).
    pub fn scatter(&self, n: usize, bytes: f64) -> f64 {
        self.select(CollectiveKind::Scatter, n, bytes, CollectiveSelector::Auto).1
    }

    /// Cost of an allgather where each rank contributes `bytes`
    /// (auto-selected algorithm).
    pub fn allgather(&self, n: usize, bytes: f64) -> f64 {
        self.select(CollectiveKind::Allgather, n, bytes, CollectiveSelector::Auto).1
    }

    /// Cost of an allreduce of a `bytes`-sized vector (auto-selected
    /// algorithm).
    pub fn allreduce(&self, n: usize, bytes: f64) -> f64 {
        self.select(CollectiveKind::Allreduce, n, bytes, CollectiveSelector::Auto).1
    }

    /// Cost of a reduction of `bytes` to the root (auto-selected algorithm).
    pub fn reduce(&self, n: usize, bytes: f64) -> f64 {
        self.select(CollectiveKind::Reduce, n, bytes, CollectiveSelector::Auto).1
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::infiniband_100g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_values() {
        assert_eq!(NetworkModel::tree_depth(1), 0.0);
        assert_eq!(NetworkModel::tree_depth(2), 1.0);
        assert_eq!(NetworkModel::tree_depth(8), 3.0);
        assert_eq!(NetworkModel::tree_depth(9), 4.0);
    }

    #[test]
    fn collectives_are_free_for_single_rank() {
        let net = NetworkModel::infiniband_100g();
        assert_eq!(net.allreduce(1, 1e6), 0.0);
        assert_eq!(net.gather(1, 1e6), 0.0);
        assert_eq!(net.allgather(1, 1e6), 0.0);
        assert_eq!(net.reduce(1, 1e6), 0.0);
        assert_eq!(net.barrier(1), 0.0);
        for kind in CollectiveKind::ALL {
            for algo in CollectiveAlgorithm::ALL {
                assert_eq!(net.collective_cost(kind, algo, 1, 1e6), 0.0);
            }
        }
    }

    #[test]
    fn slower_networks_cost_more() {
        let ib = NetworkModel::infiniband_100g();
        let e10 = NetworkModel::ethernet_10g();
        let e1 = NetworkModel::ethernet_1g();
        let bytes = 8.0 * 7840.0; // a MNIST-sized weight vector
        assert!(ib.allreduce(8, bytes) < e10.allreduce(8, bytes));
        assert!(e10.allreduce(8, bytes) < e1.allreduce(8, bytes));
    }

    #[test]
    fn ideal_network_is_free_modulo_latency() {
        let net = NetworkModel::ideal();
        assert_eq!(net.allreduce(8, 1e9), 0.0);
        assert_eq!(net.broadcast(8, 1e9), 0.0);
        assert_eq!(net.p2p(1e9), 0.0);
    }

    #[test]
    fn cost_grows_with_bytes_and_ranks() {
        let net = NetworkModel::infiniband_100g();
        assert!(net.gather(8, 1e6) > net.gather(8, 1e3));
        assert!(net.gather(16, 1e6) > net.gather(8, 1e6));
        assert!(net.broadcast(16, 1e6) > net.broadcast(2, 1e6));
        assert!(net.p2p(1e6) > net.p2p(0.0));
    }

    #[test]
    fn ring_beats_tree_above_the_crossover_payload() {
        let net = NetworkModel::infiniband_100g();
        let n = 8;
        let crossover = net
            .crossover_bytes(
                CollectiveKind::Allreduce,
                CollectiveAlgorithm::BinomialTree,
                CollectiveAlgorithm::Ring,
                n,
            )
            .expect("ring and tree allreduce cost lines must cross");
        assert!(crossover > 0.0);
        let small = crossover / 4.0;
        let large = crossover * 4.0;
        let cost = |algo, b| net.collective_cost(CollectiveKind::Allreduce, algo, n, b);
        assert!(
            cost(CollectiveAlgorithm::BinomialTree, small) < cost(CollectiveAlgorithm::Ring, small),
            "tree should win small payloads"
        );
        assert!(
            cost(CollectiveAlgorithm::Ring, large) < cost(CollectiveAlgorithm::BinomialTree, large),
            "ring should win large payloads"
        );
    }

    #[test]
    fn auto_selection_is_never_worse_than_any_fixed_algorithm() {
        let net = NetworkModel::ethernet_10g();
        for kind in CollectiveKind::ALL {
            for n in [2usize, 3, 4, 7, 8, 9, 16] {
                for bytes in [0.0, 64.0, 8192.0, 8.0e6] {
                    let (_, auto) = net.select(kind, n, bytes, CollectiveSelector::Auto);
                    for algo in CollectiveAlgorithm::ALL {
                        assert!(auto <= net.collective_cost(kind, algo, n, bytes) + 1e-18);
                    }
                }
            }
        }
    }

    #[test]
    fn forced_selection_is_honoured() {
        let net = NetworkModel::infiniband_100g();
        let (algo, cost) = net.select(
            CollectiveKind::Allreduce,
            8,
            1e7,
            CollectiveSelector::Force(CollectiveAlgorithm::Naive),
        );
        assert_eq!(algo, CollectiveAlgorithm::Naive);
        assert!(cost >= net.select(CollectiveKind::Allreduce, 8, 1e7, CollectiveSelector::Auto).1);
    }

    #[test]
    fn selector_parsing() {
        assert_eq!(CollectiveSelector::parse("auto"), Some(CollectiveSelector::Auto));
        assert_eq!(
            CollectiveSelector::parse("ring"),
            Some(CollectiveSelector::Force(CollectiveAlgorithm::Ring))
        );
        assert_eq!(
            CollectiveSelector::parse("RHD"),
            Some(CollectiveSelector::Force(CollectiveAlgorithm::RecursiveHalvingDoubling))
        );
        assert_eq!(CollectiveSelector::parse("bogus"), None);
        for algo in CollectiveAlgorithm::ALL {
            assert_eq!(CollectiveAlgorithm::parse(algo.name()), Some(algo));
        }
    }

    #[test]
    fn env_value_parsing_accepts_every_spelling() {
        assert_eq!(CollectiveSelector::parse_env_value("auto"), CollectiveSelector::Auto);
        assert_eq!(
            CollectiveSelector::parse_env_value("Ring"),
            CollectiveSelector::Force(CollectiveAlgorithm::Ring)
        );
        for algo in CollectiveAlgorithm::ALL {
            assert_eq!(
                CollectiveSelector::parse_env_value(algo.name()),
                CollectiveSelector::Force(algo)
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not name a collective selection")]
    fn unparseable_env_value_panics_loudly_instead_of_falling_back_to_auto() {
        CollectiveSelector::parse_env_value("rinf"); // a typo of "ring"
    }

    #[test]
    fn compression_parsing_accepts_every_spelling() {
        for c in Compression::ALL {
            assert_eq!(Compression::parse(c.name()), Some(c));
        }
        assert_eq!(Compression::parse("off"), Some(Compression::None));
        assert_eq!(Compression::parse("F64"), Some(Compression::None));
        assert_eq!(Compression::parse("FP16"), Some(Compression::F16));
        assert_eq!(Compression::parse("half"), Some(Compression::F16));
        assert_eq!(Compression::parse("BFloat16"), Some(Compression::Bf16));
        assert_eq!(Compression::parse("gzip"), None);
        assert_eq!(Compression::parse_env_value(" bf16 "), Compression::Bf16);
    }

    #[test]
    fn compression_wire_bytes_and_rounding() {
        assert_eq!(Compression::None.wire_bytes_per_element(), 8.0);
        assert_eq!(Compression::F16.wire_bytes_per_element(), 2.0);
        assert_eq!(Compression::Bf16.wire_bytes_per_element(), 2.0);
        assert!(Compression::None.is_identity());
        assert!(!Compression::F16.is_identity());
        let x = 1.0 / 3.0;
        assert_eq!(Compression::None.round(x).to_bits(), x.to_bits());
        for c in [Compression::F16, Compression::Bf16] {
            let r = c.round(x);
            assert_ne!(r.to_bits(), x.to_bits(), "{} must actually quantize", c.name());
            assert!((r - x).abs() < 0.01);
            // Rounding is idempotent: the wire format is a fixed point.
            assert_eq!(c.round(r).to_bits(), r.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "does not name a compression policy")]
    fn unparseable_compression_env_value_panics_loudly() {
        Compression::parse_env_value("f8"); // not a supported wire format
    }

    #[test]
    fn compression_serde_round_trips_and_defaults_to_none() {
        for c in Compression::ALL {
            let v = c.to_value();
            assert_eq!(Compression::from_value(&v).unwrap(), c);
        }
        // A spec written before wire compression existed has no key at all:
        // the shim hands `Null`, which must decode as the uncompressed path.
        assert_eq!(Compression::from_value(&serde::Value::Null).unwrap(), Compression::None);
        let err = Compression::from_value(&serde::Value::Str("gzip".into())).unwrap_err();
        assert!(err.0.contains("bfloat16"), "error must list accepted spellings: {}", err.0);
    }

    #[test]
    fn power_of_two_ranks_prefer_halving_doubling_large_ranks_prefer_ring_when_odd() {
        let net = NetworkModel::infiniband_100g();
        let big = 8.0e6;
        let (algo_pow2, _) = net.select(CollectiveKind::Allreduce, 8, big, CollectiveSelector::Auto);
        assert_eq!(algo_pow2, CollectiveAlgorithm::RecursiveHalvingDoubling);
        let (algo_odd, _) = net.select(CollectiveKind::Allreduce, 9, big, CollectiveSelector::Auto);
        assert_eq!(algo_odd, CollectiveAlgorithm::Ring, "non-power-of-two large payloads go ring");
    }
}
