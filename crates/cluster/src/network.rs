//! Latency/bandwidth network cost model with tree-shaped collectives.

use serde::{Deserialize, Serialize};

/// α+β cost model of the interconnect.
///
/// A point-to-point message of `b` bytes costs `latency + b / bandwidth`
/// seconds; collectives are charged using the standard tree/butterfly
/// algorithms' asymptotics (⌈log₂ N⌉ rounds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Human-readable name of the fabric.
    pub name: &'static str,
    /// One-way message latency in seconds (α).
    pub latency: f64,
    /// Link bandwidth in bytes per second (1/β).
    pub bandwidth: f64,
}

impl NetworkModel {
    /// 100 Gbps Infiniband (the paper's cluster): ~1.5 µs latency,
    /// 100 Gbit/s ≈ 12.5 GB/s.
    pub fn infiniband_100g() -> Self {
        Self {
            name: "infiniband-100g",
            latency: 1.5e-6,
            bandwidth: 12.5e9,
        }
    }

    /// 10 Gbps Ethernet: ~50 µs latency, 1.25 GB/s. Used in the "slower
    /// interconnect" ablation the paper discusses qualitatively.
    pub fn ethernet_10g() -> Self {
        Self {
            name: "ethernet-10g",
            latency: 50.0e-6,
            bandwidth: 1.25e9,
        }
    }

    /// 1 Gbps Ethernet: ~100 µs latency, 125 MB/s — the "high latency, low
    /// bandwidth" environment where single-round methods shine.
    pub fn ethernet_1g() -> Self {
        Self {
            name: "ethernet-1g",
            latency: 100.0e-6,
            bandwidth: 125.0e6,
        }
    }

    /// An idealised zero-cost network (useful to isolate compute behaviour).
    pub fn ideal() -> Self {
        Self {
            name: "ideal",
            latency: 0.0,
            bandwidth: f64::INFINITY,
        }
    }

    fn per_byte(&self, bytes: f64) -> f64 {
        if self.bandwidth.is_infinite() {
            0.0
        } else {
            bytes / self.bandwidth
        }
    }

    /// Number of tree rounds for `n` participants.
    pub fn tree_depth(n: usize) -> f64 {
        if n <= 1 {
            0.0
        } else {
            (n as f64).log2().ceil()
        }
    }

    /// Cost of a point-to-point message of `bytes`.
    pub fn p2p(&self, bytes: f64) -> f64 {
        self.latency + self.per_byte(bytes)
    }

    /// Cost of a barrier among `n` ranks.
    pub fn barrier(&self, n: usize) -> f64 {
        Self::tree_depth(n) * self.latency
    }

    /// Cost of a broadcast of `bytes` from the root to `n` ranks. Large
    /// messages are pipelined (scatter + allgather, as MPI implementations
    /// do), so the bandwidth term is paid once, not once per tree level.
    pub fn broadcast(&self, n: usize, bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        Self::tree_depth(n) * self.latency + 2.0 * self.per_byte(bytes) * (n as f64 - 1.0) / n as f64
    }

    /// Cost of gathering `bytes` from each of `n` ranks at the root
    /// (bottlenecked by the root's incoming link).
    pub fn gather(&self, n: usize, bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        Self::tree_depth(n) * self.latency + (n as f64 - 1.0) * self.per_byte(bytes)
    }

    /// Cost of scattering per-rank payloads of `bytes` from the root.
    pub fn scatter(&self, n: usize, bytes: f64) -> f64 {
        self.gather(n, bytes)
    }

    /// Cost of an allgather where each rank contributes `bytes`.
    pub fn allgather(&self, n: usize, bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        Self::tree_depth(n) * self.latency + (n as f64 - 1.0) * self.per_byte(bytes)
    }

    /// Cost of a butterfly allreduce of a `bytes`-sized vector.
    pub fn allreduce(&self, n: usize, bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        2.0 * Self::tree_depth(n) * self.latency + 2.0 * self.per_byte(bytes) * (n as f64 - 1.0) / n as f64
    }

    /// Cost of a reduction of `bytes` to the root (pipelined reduce-scatter +
    /// gather, so the bandwidth term is paid once).
    pub fn reduce(&self, n: usize, bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        Self::tree_depth(n) * self.latency + 2.0 * self.per_byte(bytes) * (n as f64 - 1.0) / n as f64
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::infiniband_100g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_values() {
        assert_eq!(NetworkModel::tree_depth(1), 0.0);
        assert_eq!(NetworkModel::tree_depth(2), 1.0);
        assert_eq!(NetworkModel::tree_depth(8), 3.0);
        assert_eq!(NetworkModel::tree_depth(9), 4.0);
    }

    #[test]
    fn collectives_are_free_for_single_rank() {
        let net = NetworkModel::infiniband_100g();
        assert_eq!(net.allreduce(1, 1e6), 0.0);
        assert_eq!(net.gather(1, 1e6), 0.0);
        assert_eq!(net.allgather(1, 1e6), 0.0);
        assert_eq!(net.reduce(1, 1e6), 0.0);
        assert_eq!(net.barrier(1), 0.0);
    }

    #[test]
    fn slower_networks_cost_more() {
        let ib = NetworkModel::infiniband_100g();
        let e10 = NetworkModel::ethernet_10g();
        let e1 = NetworkModel::ethernet_1g();
        let bytes = 8.0 * 7840.0; // a MNIST-sized weight vector
        assert!(ib.allreduce(8, bytes) < e10.allreduce(8, bytes));
        assert!(e10.allreduce(8, bytes) < e1.allreduce(8, bytes));
    }

    #[test]
    fn ideal_network_is_free_modulo_latency() {
        let net = NetworkModel::ideal();
        assert_eq!(net.allreduce(8, 1e9), 0.0);
        assert_eq!(net.broadcast(8, 1e9), 0.0);
        assert_eq!(net.p2p(1e9), 0.0);
    }

    #[test]
    fn cost_grows_with_bytes_and_ranks() {
        let net = NetworkModel::infiniband_100g();
        assert!(net.gather(8, 1e6) > net.gather(8, 1e3));
        assert!(net.gather(16, 1e6) > net.gather(8, 1e6));
        assert!(net.broadcast(16, 1e6) > net.broadcast(2, 1e6));
        assert!(net.p2p(1e6) > net.p2p(0.0));
    }
}
