//! Per-rank communication statistics.

use serde::{Deserialize, Serialize};

/// Counters describing everything a rank has communicated. The figure
/// binaries use these to report "rounds per iteration" and "bytes per
/// iteration" — the quantities the paper's communication argument is about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of collective operations this rank participated in.
    pub collectives: u64,
    /// Total payload bytes this rank contributed to collectives.
    pub bytes_sent: f64,
    /// Total payload bytes this rank received from collectives.
    pub bytes_received: f64,
    /// Simulated seconds spent inside communication calls.
    pub comm_time: f64,
    /// Simulated seconds spent in local compute (as charged by the caller).
    pub compute_time: f64,
}

impl CommStats {
    /// Records one collective with the given sent/received payload and cost.
    pub fn record(&mut self, sent: f64, received: f64, time: f64) {
        self.collectives += 1;
        self.bytes_sent += sent;
        self.bytes_received += received;
        self.comm_time += time;
    }

    /// Records local compute time.
    pub fn record_compute(&mut self, time: f64) {
        self.compute_time += time;
    }

    /// Total simulated time attributable to this rank.
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.compute_time
    }

    /// Fraction of total time spent communicating (0 if nothing recorded).
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_time();
        if total > 0.0 {
            self.comm_time / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = CommStats::default();
        s.record(100.0, 200.0, 0.5);
        s.record(50.0, 0.0, 0.25);
        s.record_compute(0.25);
        assert_eq!(s.collectives, 2);
        assert_eq!(s.bytes_sent, 150.0);
        assert_eq!(s.bytes_received, 200.0);
        assert!((s.comm_time - 0.75).abs() < 1e-12);
        assert!((s.total_time() - 1.0).abs() < 1e-12);
        assert!((s.comm_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fraction() {
        let s = CommStats::default();
        assert_eq!(s.comm_fraction(), 0.0);
        assert_eq!(s.total_time(), 0.0);
    }
}
