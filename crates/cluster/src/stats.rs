//! Per-rank communication statistics, with a per-collective-kind breakdown.

use crate::network::{CollectiveAlgorithm, CollectiveKind};
use serde::{Deserialize, Serialize};

/// Counters for one collective kind (allreduce, broadcast, …): how often it
/// ran, how much it moved, how long it took, and which algorithms the
/// selector chose for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KindStats {
    /// Number of collectives of this kind.
    pub count: u64,
    /// Payload bytes this rank contributed.
    pub bytes_sent: f64,
    /// Payload bytes this rank received.
    pub bytes_received: f64,
    /// Simulated seconds spent (for split-phase collectives: only the
    /// non-overlapped tail billed at `wait`).
    pub seconds: f64,
    /// How often each [`CollectiveAlgorithm`] was chosen, indexed by
    /// [`CollectiveAlgorithm::index`].
    pub algo_counts: [u64; CollectiveAlgorithm::COUNT],
}

impl KindStats {
    /// The most frequently chosen algorithm for this kind, if any ran.
    pub fn dominant_algorithm(&self) -> Option<CollectiveAlgorithm> {
        CollectiveAlgorithm::ALL
            .into_iter()
            .max_by_key(|a| self.algo_counts[a.index()])
            .filter(|a| self.algo_counts[a.index()] > 0)
    }
}

/// Counters describing everything a rank has communicated. The figure
/// binaries use these to report "rounds per iteration" and "bytes per
/// iteration" — the quantities the paper's communication argument is about —
/// and the per-kind breakdown shows *where* the communication time goes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Number of collective operations this rank participated in.
    pub collectives: u64,
    /// Total *on-wire* payload bytes this rank contributed to collectives
    /// (after any [`crate::Compression`]; equal to the logical counters when
    /// compression is off).
    pub bytes_sent: f64,
    /// Total *on-wire* payload bytes this rank received from collectives.
    pub bytes_received: f64,
    /// Total full-width (`f64`, pre-compression) payload bytes this rank
    /// contributed — the logical volume the solver asked to move. The gap to
    /// [`CommStats::bytes_sent`] is what wire compression saved.
    pub logical_bytes_sent: f64,
    /// Total full-width payload bytes this rank received.
    pub logical_bytes_received: f64,
    /// Simulated seconds spent inside communication calls.
    pub comm_time: f64,
    /// Simulated seconds spent in local compute (as charged by the caller).
    pub compute_time: f64,
    /// Simulated seconds this rank spent idle at *blocking* collectives,
    /// waiting for later-arriving ranks before the transfer could start.
    /// A fast rank in a heterogeneous fleet accumulates a large value here;
    /// the slowest rank accumulates (nearly) none. Split-phase collectives
    /// are excluded: their wait is deliberately overlapped with compute, so
    /// attributing it as idle time would double-count.
    pub idle_wait_time: f64,
    /// Largest per-round arrival skew (latest minus earliest rank arrival,
    /// in simulated seconds) observed across every rendezvous this rank
    /// participated in — the headline "how uneven is this fleet" number.
    pub max_round_skew: f64,
    /// Per-collective-kind breakdown, indexed by [`CollectiveKind::index`].
    pub per_kind: [KindStats; CollectiveKind::COUNT],
}

impl CommStats {
    /// Records one collective with the given sent/received payload and cost,
    /// without a kind attribution (legacy callers; prefer
    /// [`CommStats::record_collective`]). The payload is taken as
    /// uncompressed (logical counters advance by the same amounts).
    pub fn record(&mut self, sent: f64, received: f64, time: f64) {
        self.record_wire(sent, received, sent, received, time);
    }

    /// Records one collective whose on-wire payload differs from the logical
    /// (full-width) payload because of wire compression.
    pub fn record_wire(&mut self, sent: f64, received: f64, logical_sent: f64, logical_received: f64, time: f64) {
        self.collectives += 1;
        self.bytes_sent += sent;
        self.bytes_received += received;
        self.logical_bytes_sent += logical_sent;
        self.logical_bytes_received += logical_received;
        self.comm_time += time;
    }

    /// Records one collective of a known kind executed by a known algorithm
    /// (uncompressed payload).
    pub fn record_collective(&mut self, kind: CollectiveKind, algo: CollectiveAlgorithm, sent: f64, received: f64, time: f64) {
        self.record_collective_wire(kind, algo, sent, received, sent, received, time);
    }

    /// Records one collective of a known kind and algorithm whose on-wire
    /// bytes differ from the logical bytes (compressed payload). The
    /// per-kind breakdown tracks the on-wire volume (what the network
    /// actually carried).
    #[allow(clippy::too_many_arguments)]
    pub fn record_collective_wire(
        &mut self,
        kind: CollectiveKind,
        algo: CollectiveAlgorithm,
        sent: f64,
        received: f64,
        logical_sent: f64,
        logical_received: f64,
        time: f64,
    ) {
        self.record_wire(sent, received, logical_sent, logical_received, time);
        let k = &mut self.per_kind[kind.index()];
        k.count += 1;
        k.bytes_sent += sent;
        k.bytes_received += received;
        k.seconds += time;
        k.algo_counts[algo.index()] += 1;
    }

    /// On-wire fraction of the logical sent volume: 1.0 when nothing was
    /// compressed (or nothing was sent), 0.25 when every payload went over
    /// the wire as f16/bf16.
    pub fn wire_fraction(&self) -> f64 {
        if self.logical_bytes_sent > 0.0 {
            self.bytes_sent / self.logical_bytes_sent
        } else {
            1.0
        }
    }

    /// The breakdown entry for one collective kind.
    pub fn kind(&self, kind: CollectiveKind) -> &KindStats {
        &self.per_kind[kind.index()]
    }

    /// Records local compute time.
    pub fn record_compute(&mut self, time: f64) {
        self.compute_time += time;
    }

    /// Records the straggler accounting of one rendezvous round: `wait` is
    /// how long this rank sat idle before the last rank arrived, `skew` is
    /// the round's arrival spread (latest − earliest).
    pub fn record_skew(&mut self, wait: f64, skew: f64) {
        self.idle_wait_time += wait.max(0.0);
        if skew > self.max_round_skew {
            self.max_round_skew = skew;
        }
    }

    /// Total simulated time attributable to this rank.
    pub fn total_time(&self) -> f64 {
        self.comm_time + self.compute_time
    }

    /// Fraction of total time spent communicating (0 if nothing recorded).
    pub fn comm_fraction(&self) -> f64 {
        let total = self.total_time();
        if total > 0.0 {
            self.comm_time / total
        } else {
            0.0
        }
    }

    /// Exact size of the fixed little-endian layout written by
    /// [`CommStats::to_le_bytes`].
    pub const LE_BYTES: usize = 9 * 8 + CollectiveKind::COUNT * (8 * (1 + 3 + CollectiveAlgorithm::COUNT));

    /// Serialises the counters into a fixed little-endian byte layout
    /// (fields in declaration order, `f64` via its IEEE bit pattern) — the
    /// transport side channel the multi-process stats gather uses. Clears
    /// `out` first; capacity is kept.
    pub fn to_le_bytes(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&self.collectives.to_le_bytes());
        for v in [
            self.bytes_sent,
            self.bytes_received,
            self.logical_bytes_sent,
            self.logical_bytes_received,
            self.comm_time,
            self.compute_time,
            self.idle_wait_time,
            self.max_round_skew,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for k in &self.per_kind {
            out.extend_from_slice(&k.count.to_le_bytes());
            for v in [k.bytes_sent, k.bytes_received, k.seconds] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for c in &k.algo_counts {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len(), Self::LE_BYTES);
    }

    /// Reverses [`CommStats::to_le_bytes`] bit-exactly. Errors (with a
    /// description) on a size mismatch rather than guessing.
    pub fn from_le_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != Self::LE_BYTES {
            return Err(format!(
                "CommStats: expected exactly {} serialized bytes, got {}",
                Self::LE_BYTES,
                bytes.len()
            ));
        }
        let mut at = 0usize;
        let mut next_u64 = || {
            let v = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("stats counter field is 8 bytes"));
            at += 8;
            v
        };
        let mut s = CommStats {
            collectives: next_u64(),
            bytes_sent: f64::from_bits(next_u64()),
            bytes_received: f64::from_bits(next_u64()),
            logical_bytes_sent: f64::from_bits(next_u64()),
            logical_bytes_received: f64::from_bits(next_u64()),
            comm_time: f64::from_bits(next_u64()),
            compute_time: f64::from_bits(next_u64()),
            idle_wait_time: f64::from_bits(next_u64()),
            max_round_skew: f64::from_bits(next_u64()),
            per_kind: [KindStats::default(); CollectiveKind::COUNT],
        };
        for k in s.per_kind.iter_mut() {
            k.count = next_u64();
            k.bytes_sent = f64::from_bits(next_u64());
            k.bytes_received = f64::from_bits(next_u64());
            k.seconds = f64::from_bits(next_u64());
            for c in k.algo_counts.iter_mut() {
                *c = next_u64();
            }
        }
        Ok(s)
    }

    /// Pre-formatted rows for a "where does communication time go" table:
    /// `[kind, count, bytes sent, seconds, dominant algorithm]` for every
    /// kind that ran at least once.
    pub fn breakdown_rows(&self) -> Vec<[String; 5]> {
        CollectiveKind::ALL
            .into_iter()
            .filter(|k| self.kind(*k).count > 0)
            .map(|k| {
                let s = self.kind(k);
                [
                    k.name().to_string(),
                    s.count.to_string(),
                    format!("{:.0}", s.bytes_sent),
                    format!("{:.6}", s.seconds),
                    s.dominant_algorithm().map(|a| a.name()).unwrap_or("-").to_string(),
                ]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = CommStats::default();
        s.record(100.0, 200.0, 0.5);
        s.record(50.0, 0.0, 0.25);
        s.record_compute(0.25);
        assert_eq!(s.collectives, 2);
        assert_eq!(s.bytes_sent, 150.0);
        assert_eq!(s.bytes_received, 200.0);
        assert!((s.comm_time - 0.75).abs() < 1e-12);
        assert!((s.total_time() - 1.0).abs() < 1e-12);
        assert!((s.comm_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uncompressed_records_keep_logical_and_wire_counters_equal() {
        let mut s = CommStats::default();
        s.record(100.0, 200.0, 0.5);
        s.record_collective(CollectiveKind::Allreduce, CollectiveAlgorithm::Ring, 80.0, 80.0, 1e-4);
        assert_eq!(s.logical_bytes_sent, s.bytes_sent);
        assert_eq!(s.logical_bytes_received, s.bytes_received);
        assert_eq!(s.wire_fraction(), 1.0);
    }

    #[test]
    fn compressed_records_track_wire_and_logical_volume_separately() {
        let mut s = CommStats::default();
        // 100 f64 elements sent as f16: 800 logical bytes, 200 on the wire.
        s.record_collective_wire(
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::Ring,
            200.0,
            200.0,
            800.0,
            800.0,
            1e-4,
        );
        assert_eq!(s.bytes_sent, 200.0);
        assert_eq!(s.logical_bytes_sent, 800.0);
        assert_eq!(s.bytes_received, 200.0);
        assert_eq!(s.logical_bytes_received, 800.0);
        assert_eq!(s.wire_fraction(), 0.25);
        // The per-kind breakdown carries the on-wire volume.
        assert_eq!(s.kind(CollectiveKind::Allreduce).bytes_sent, 200.0);
    }

    #[test]
    fn empty_stats_have_zero_fraction() {
        let s = CommStats::default();
        assert_eq!(s.comm_fraction(), 0.0);
        assert_eq!(s.total_time(), 0.0);
        assert!(s.breakdown_rows().is_empty());
        assert_eq!(s.idle_wait_time, 0.0);
        assert_eq!(s.max_round_skew, 0.0);
    }

    #[test]
    fn skew_accumulates_waits_and_keeps_the_worst_round() {
        let mut s = CommStats::default();
        s.record_skew(0.5, 0.7);
        s.record_skew(0.25, 0.3);
        s.record_skew(-1.0, 0.0); // negative waits are clamped, not subtracted
        assert!((s.idle_wait_time - 0.75).abs() < 1e-12);
        assert_eq!(s.max_round_skew, 0.7);
    }

    #[test]
    fn per_kind_breakdown_attributes_collectives() {
        let mut s = CommStats::default();
        s.record_collective(CollectiveKind::Allreduce, CollectiveAlgorithm::Ring, 80.0, 80.0, 1e-4);
        s.record_collective(CollectiveKind::Allreduce, CollectiveAlgorithm::Ring, 80.0, 80.0, 1e-4);
        s.record_collective(CollectiveKind::Allreduce, CollectiveAlgorithm::BinomialTree, 8.0, 8.0, 1e-6);
        s.record_collective(CollectiveKind::Broadcast, CollectiveAlgorithm::BinomialTree, 0.0, 40.0, 2e-5);
        assert_eq!(s.collectives, 4);
        let ar = s.kind(CollectiveKind::Allreduce);
        assert_eq!(ar.count, 3);
        assert_eq!(ar.bytes_sent, 168.0);
        assert_eq!(ar.algo_counts[CollectiveAlgorithm::Ring.index()], 2);
        assert_eq!(ar.algo_counts[CollectiveAlgorithm::BinomialTree.index()], 1);
        assert_eq!(ar.dominant_algorithm(), Some(CollectiveAlgorithm::Ring));
        assert_eq!(s.kind(CollectiveKind::Broadcast).count, 1);
        assert_eq!(s.kind(CollectiveKind::Gather).count, 0);
        let rows = s.breakdown_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], "allreduce");
        assert_eq!(rows[1][4], "ring");
    }

    #[test]
    fn dominant_algorithm_is_none_when_kind_never_ran() {
        let s = KindStats::default();
        assert_eq!(s.dominant_algorithm(), None);
    }

    #[test]
    fn le_bytes_round_trip_is_bit_exact() {
        let mut s = CommStats::default();
        s.record_collective_wire(
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::Ring,
            200.0,
            200.0,
            800.0,
            800.0,
            1e-4,
        );
        s.record_collective(CollectiveKind::Broadcast, CollectiveAlgorithm::BinomialTree, 0.0, 40.0, 2e-5);
        s.record_compute(0.125);
        s.record_skew(0.5, 0.7);
        // Adversarial values must survive bit-exactly too.
        s.max_round_skew = f64::MIN_POSITIVE / 2.0; // subnormal
        s.idle_wait_time = -0.0;
        let mut bytes = Vec::new();
        s.to_le_bytes(&mut bytes);
        assert_eq!(bytes.len(), CommStats::LE_BYTES);
        let back = CommStats::from_le_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.idle_wait_time.to_bits(), s.idle_wait_time.to_bits());
        assert_eq!(back.max_round_skew.to_bits(), s.max_round_skew.to_bits());
    }

    #[test]
    fn le_bytes_rejects_wrong_sizes() {
        let err = CommStats::from_le_bytes(&[0u8; 3]).unwrap_err();
        assert!(err.contains("expected exactly"), "got: {err}");
    }
}
