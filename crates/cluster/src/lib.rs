//! # nadmm-cluster
//!
//! A simulated distributed cluster.
//!
//! The paper evaluates Newton-ADMM on up to 16 MPI ranks connected by a
//! 100 Gbps Infiniband fabric. This crate substitutes that substrate with an
//! in-process cluster: every simulated rank runs on its own OS thread,
//! collectives are implemented with a shared-memory rendezvous, and the
//! *time* each collective would have taken on a real fabric is charged
//! against a latency/bandwidth [`NetworkModel`] (tree-shaped collectives, the
//! same asymptotics as MPI implementations use).
//!
//! Because the algorithms in this workspace differ mainly in *how many
//! communication rounds and bytes* they need per iteration (Newton-ADMM: one
//! gather + one scatter; GIANT: three rounds; synchronous SGD: one allreduce
//! per minibatch), simulating the network with an α+βn model retains exactly
//! the trade-off the paper studies, while the numerical results are identical
//! to a real multi-node run (the collectives are exact).
//!
//! Entry points:
//! * [`Cluster::run`] — spawn `n` ranks, run a closure on each, collect
//!   results in rank order;
//! * [`Communicator`] — the MPI-flavoured interface the solvers code against;
//! * [`SingleProcessComm`] — a size-1 communicator for single-node runs.

pub mod comm;
pub mod network;
pub mod stats;
pub mod thread_comm;

pub use comm::{Communicator, SingleProcessComm, ROOT_RANK};
pub use network::NetworkModel;
pub use stats::CommStats;
pub use thread_comm::{Cluster, ThreadComm};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_a_trivial_cluster() {
        let results = Cluster::new(4, NetworkModel::infiniband_100g()).run(|comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30]);
    }
}
