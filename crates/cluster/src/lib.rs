//! # nadmm-cluster
//!
//! A simulated distributed cluster with a pluggable collective engine.
//!
//! The paper evaluates Newton-ADMM on up to 16 MPI ranks connected by a
//! 100 Gbps Infiniband fabric. This crate substitutes that substrate with an
//! in-process cluster: every simulated rank runs on its own OS thread,
//! collectives are implemented with a shared-memory rendezvous, and the
//! *time* each collective would have taken on a real fabric is charged
//! against a latency/bandwidth [`NetworkModel`].
//!
//! Unlike the seed's single ⌈log₂N⌉-tree asymptotic, each collective is
//! costed per [`CollectiveAlgorithm`] (naive star, binomial tree, ring,
//! recursive halving-doubling) with automatic payload-size crossover
//! selection — ring allreduce wins the large d×k parameter reductions of the
//! ADMM outer loop, trees win the scalar instrumentation reductions — and
//! the choice is recorded per collective kind in [`CommStats`].
//!
//! Because the algorithms in this workspace differ mainly in *how many
//! communication rounds and bytes* they need per iteration (Newton-ADMM: one
//! reduce + one broadcast; GIANT: three rounds; synchronous SGD: one
//! allreduce per minibatch), simulating the network with per-algorithm α+β
//! models retains exactly the trade-off the paper studies, while the
//! numerical results are identical to a real multi-node run (the collectives
//! are exact, and bit-identical across algorithm choices by construction).
//!
//! Entry points:
//! * [`Cluster::run`] — spawn `n` ranks, run a closure on each, collect
//!   results in rank order;
//! * [`Communicator`] — the MPI-flavoured interface the solvers code
//!   against: allocating, in-place (`*_into`, zero-alloc once warm) and
//!   split-phase (`start_*` → `wait_into`, overlapping compute with
//!   communication on the simulated clocks);
//! * [`SingleProcessComm`] — a size-1 communicator for single-node runs.

pub mod comm;
pub mod network;
pub mod stats;
pub mod straggler;
pub mod thread_comm;
pub mod transport;
pub mod workspace;

pub use comm::{CollectiveHandle, Communicator, SingleProcessComm, ROOT_RANK};
pub use network::{
    CollectiveAlgorithm, CollectiveKind, CollectiveSelector, Compression, NetworkModel, COLLECTIVE_ALGO_ENV, COMPRESSION_ENV,
};
pub use stats::{CommStats, KindStats};
pub use straggler::{SlowRank, StragglerModel};
pub use thread_comm::{Cluster, ClusterComm, ThreadComm};
pub use transport::tcp::{reserve_loopback_peers, TcpTransport};
pub use transport::thread::{ThreadFabric, ThreadTransport};
pub use transport::{Transport, TransportKind, TransportSpec, TRANSPORT_ENV};
pub use workspace::{CommWorkspace, CommWorkspaceStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_a_trivial_cluster() {
        let results = Cluster::new(4, NetworkModel::infiniband_100g()).run(|comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30]);
    }
}
