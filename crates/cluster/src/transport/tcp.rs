//! TCP transport: one process per rank, real sockets on loopback or across
//! hosts.
//!
//! Bootstrap is rendezvous-style: every rank binds a listener on its own
//! `host:port` from the shared peer list, dials every lower rank (retrying
//! until the peer is listening) and accepts a connection from every higher
//! rank, identified by a hello frame. The result is a full-mesh connection
//! cache keyed by peer rank.
//!
//! Sends are non-blocking for the caller: frames go through an mpsc channel
//! to a dedicated send thread that writes length-prefixed frames
//! ([`wire::write_frame`]) to the cached streams — the gridiron
//! `message/tcp.rs` shape. Receives block on the peer's stream through a
//! buffered reader.
//!
//! A dead peer surfaces as an EOF/reset on its stream, which `recv_into`
//! turns into a loud panic; an explicit [`Transport::poison`] additionally
//! pushes a wire error frame to every peer so they panic with the original
//! message instead of a bare connection error.

use super::wire;
use super::Transport;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const CONNECT_RETRY_EVERY: Duration = Duration::from_millis(25);
const CONNECT_DEADLINE: Duration = Duration::from_secs(60);
const BIND_DEADLINE: Duration = Duration::from_secs(30);

fn bind_with_retry(addr: &str) -> std::io::Result<TcpListener> {
    let deadline = Instant::now() + BIND_DEADLINE;
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if Instant::now() >= deadline => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("could not bind rank listener on {addr} within {BIND_DEADLINE:?}: {e}"),
                ))
            }
            Err(_) => std::thread::sleep(CONNECT_RETRY_EVERY),
        }
    }
}

fn connect_with_retry(addr: &str) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + CONNECT_DEADLINE;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("could not reach peer {addr} within {CONNECT_DEADLINE:?}: {e}"),
                ))
            }
            Err(_) => std::thread::sleep(CONNECT_RETRY_EVERY),
        }
    }
}

/// Reserves `n` distinct loopback `host:port` addresses by binding
/// OS-assigned ports and releasing them. Used by the multi-process launcher
/// (children re-bind with retry, so the tiny release-to-rebind window is
/// harmless on a loopback-only run).
pub fn reserve_loopback_peers(n: usize) -> std::io::Result<Vec<String>> {
    let mut keep = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(format!("127.0.0.1:{}", l.local_addr()?.port()));
        // Hold every listener until all ports are chosen so the OS cannot
        // hand the same port out twice.
        keep.push(l);
    }
    Ok(addrs)
}

/// One rank's endpoint on a full-mesh TCP fabric.
pub struct TcpTransport {
    rank: usize,
    size: usize,
    /// Read halves keyed by peer rank (`None` at `self.rank`).
    readers: Vec<Option<BufReader<TcpStream>>>,
    /// Feed of the send thread; dropped (closing the channel) on teardown.
    sink: Option<mpsc::Sender<(usize, Vec<u8>)>>,
    sender: Option<std::thread::JoinHandle<()>>,
    /// Scratch for `recv_into`'s length-prefixed reads.
    rx_scratch: Vec<u8>,
}

impl TcpTransport {
    /// Connects rank `rank` into the mesh described by `peers` (one
    /// `host:port` listen address per rank, rank order). Blocks until every
    /// connection is up or a bootstrap deadline expires.
    pub fn connect(rank: usize, peers: &[String]) -> std::io::Result<Self> {
        let size = peers.len();
        assert!(rank < size, "rank {rank} out of range for {size} peers");
        let mut writers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
        let mut readers: Vec<Option<BufReader<TcpStream>>> = (0..size).map(|_| None).collect();
        let listener = bind_with_retry(&peers[rank])?;
        let mut hello = Vec::new();
        // Dial every lower rank, identifying ourselves with a hello frame.
        for (peer, addr) in peers.iter().enumerate().take(rank) {
            let mut stream = connect_with_retry(addr)?;
            stream.set_nodelay(true)?;
            wire::encode_hello(&mut hello, rank as u64, size as u64);
            wire::write_frame(&mut stream, &hello)?;
            stream.flush()?;
            writers[peer] = Some(stream.try_clone()?);
            readers[peer] = Some(BufReader::new(stream));
        }
        // Accept one connection from every higher rank; the hello frame says
        // which rank is on the other end.
        let mut frame = Vec::new();
        for _ in rank + 1..size {
            let (stream, from) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            wire::read_frame_into(&mut reader, &mut frame)?;
            let peer = match wire::decode(&frame) {
                Ok(wire::Frame::Hello {
                    rank: peer,
                    size: peer_size,
                }) => {
                    if peer_size as usize != size {
                        return Err(bootstrap_error(format!(
                            "peer at {from} joined with cluster size {peer_size}, expected {size}"
                        )));
                    }
                    peer as usize
                }
                Ok(other) => {
                    return Err(bootstrap_error(format!(
                        "peer at {from} opened with a non-hello frame: {other:?}"
                    )))
                }
                Err(e) => return Err(bootstrap_error(format!("peer at {from} sent a corrupt hello: {e}"))),
            };
            if peer <= rank || peer >= size {
                return Err(bootstrap_error(format!(
                    "peer at {from} claims rank {peer}, expected one of {}..{size}",
                    rank + 1
                )));
            }
            if writers[peer].is_some() {
                return Err(bootstrap_error(format!("two peers claim rank {peer}")));
            }
            writers[peer] = Some(stream);
            readers[peer] = Some(reader);
        }
        // The dedicated send thread owns every write half and drains the
        // channel until the transport drops it.
        let (tx, rx) = mpsc::channel::<(usize, Vec<u8>)>();
        let sender = std::thread::Builder::new()
            .name(format!("nadmm-tcp-send-{rank}"))
            .spawn(move || {
                for (to, frame) in rx {
                    let Some(stream) = writers[to].as_mut() else { continue };
                    if let Err(e) = wire::write_frame(stream, &frame).and_then(|()| stream.flush()) {
                        // The receiving side of the dead connection reports
                        // the failure loudly; the send thread just stops
                        // feeding it.
                        eprintln!("nadmm-tcp rank {rank}: send to rank {to} failed: {e}");
                        writers[to] = None;
                    }
                }
            })?;
        Ok(Self {
            rank,
            size,
            readers,
            sink: Some(tx),
            sender: Some(sender),
            rx_scratch: Vec::new(),
        })
    }
}

fn bootstrap_error(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, format!("tcp bootstrap: {msg}"))
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn backend(&self) -> &'static str {
        "tcp"
    }

    fn send(&mut self, to: usize, frame: &[u8]) {
        assert_ne!(to, self.rank, "a rank does not send frames to itself");
        if let Some(sink) = &self.sink {
            // A closed channel means the send thread is gone; the matching
            // recv will report the dead connection.
            let _ = sink.send((to, frame.to_vec()));
        }
    }

    fn recv_into(&mut self, from: usize, buf: &mut Vec<u8>) {
        assert_ne!(from, self.rank, "a rank does not receive frames from itself");
        let rank = self.rank;
        let reader = self.readers[from]
            .as_mut()
            .unwrap_or_else(|| panic!("tcp transport: rank {rank} has no connection to rank {from}"));
        if let Err(e) = wire::read_frame_into(reader, &mut self.rx_scratch) {
            panic!(
                "tcp transport: rank {rank} lost the connection to rank {from}: {e} \
                 (the peer process likely died; a consensus round cannot continue)"
            );
        }
        std::mem::swap(buf, &mut self.rx_scratch);
    }

    fn poison(&self, message: &str) {
        if let Some(sink) = &self.sink {
            let mut frame = Vec::new();
            wire::encode_error(&mut frame, message);
            for peer in (0..self.size).filter(|&p| p != self.rank) {
                let _ = sink.send((peer, frame.clone()));
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Closing the channel lets the send thread drain queued frames
        // (poison notices included) and exit.
        drop(self.sink.take());
        if let Some(h) = self.sender.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize) -> Vec<TcpTransport> {
        let peers = reserve_loopback_peers(n).unwrap();
        let mut handles = Vec::new();
        for rank in 0..n {
            let peers = peers.clone();
            handles.push(std::thread::spawn(move || TcpTransport::connect(rank, &peers).unwrap()));
        }
        let mut out: Vec<Option<TcpTransport>> = (0..n).map(|_| None).collect();
        for (rank, h) in handles.into_iter().enumerate() {
            out[rank] = Some(h.join().unwrap());
        }
        out.into_iter().map(|t| t.unwrap()).collect()
    }

    #[test]
    fn full_mesh_bootstrap_and_ordered_delivery() {
        let mut ranks = mesh(3);
        let mut r2 = ranks.pop().unwrap();
        let mut r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        assert_eq!((r0.rank(), r0.size(), r0.backend()), (0, 3, "tcp"));
        r0.send(2, b"alpha");
        r0.send(2, b"beta");
        r1.send(2, b"gamma");
        let mut buf = Vec::new();
        r2.recv_into(0, &mut buf);
        assert_eq!(buf, b"alpha");
        r2.recv_into(1, &mut buf);
        assert_eq!(buf, b"gamma");
        r2.recv_into(0, &mut buf);
        assert_eq!(buf, b"beta");
        // And the reverse direction works on the same cached connections.
        r2.send(0, b"delta");
        r0.recv_into(2, &mut buf);
        assert_eq!(buf, b"delta");
    }

    #[test]
    fn default_barrier_runs_over_tcp() {
        let ranks = mesh(3);
        let mut handles = Vec::new();
        for mut t in ranks {
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    t.barrier();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poison_delivers_the_original_message_as_an_error_frame() {
        let mut ranks = mesh(2);
        let r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        r1.poison("rank 1 hit a collective-order violation");
        drop(r1); // flush + close
        let mut buf = Vec::new();
        r0.recv_into(1, &mut buf);
        match wire::decode(&buf).unwrap() {
            wire::Frame::Error { message } => {
                assert_eq!(message, "rank 1 hit a collective-order violation");
            }
            other => panic!("expected an error frame, got {other:?}"),
        }
    }

    #[test]
    fn a_dead_peer_panics_the_receiver_instead_of_hanging() {
        let mut ranks = mesh(2);
        let r1 = ranks.pop().unwrap();
        let mut r0 = ranks.pop().unwrap();
        drop(r1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut buf = Vec::new();
            r0.recv_into(1, &mut buf);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lost the connection to rank 1"), "got: {msg}");
    }

    #[test]
    fn single_rank_mesh_needs_no_connections() {
        // A 1-rank mesh needs no connections at all and must come up alone.
        let peers = reserve_loopback_peers(1).unwrap();
        let t = TcpTransport::connect(0, &peers).unwrap();
        assert_eq!(t.size(), 1);
    }
}
