//! In-process transport: per-edge pooled mailboxes in shared memory.
//!
//! One [`ThreadFabric`] is shared by all ranks of a simulated cluster; each
//! rank holds a [`ThreadTransport`] handle. Every directed (sender →
//! receiver) edge is an independent FIFO of byte frames protected by its own
//! lock, so two disjoint pairs of ranks never contend. Delivered frame
//! buffers are recycled on a per-edge free list — a warm collective round
//! moves frames without a single heap allocation.
//!
//! Poisoning: any rank (or the cluster scaffolding, on an arbitrary panic)
//! can mark the fabric failed; every blocked and future `recv_into` then
//! panics with the original message instead of deadlocking.

use super::Transport;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

struct EdgeQueue {
    /// Frames in flight on this edge, delivery order.
    ready: VecDeque<Vec<u8>>,
    /// Recycled frame buffers (capacity kept).
    free: Vec<Vec<u8>>,
}

struct Edge {
    state: Mutex<EdgeQueue>,
    cv: Condvar,
}

/// The shared mailbox fabric of one in-process cluster.
pub struct ThreadFabric {
    n: usize,
    /// `n * n` directed edges, indexed `from * n + to`.
    edges: Vec<Edge>,
    poison: Mutex<Option<String>>,
}

impl ThreadFabric {
    /// Creates a fabric for `n` ranks.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Arc<Self> {
        assert!(n > 0, "a fabric needs at least one rank");
        Arc::new(Self {
            n,
            edges: (0..n * n)
                .map(|_| Edge {
                    state: Mutex::new(EdgeQueue {
                        ready: VecDeque::new(),
                        free: Vec::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            poison: Mutex::new(None),
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Hands out the transport endpoint of one rank.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn endpoint(self: &Arc<Self>, rank: usize) -> ThreadTransport {
        assert!(rank < self.n, "rank {rank} out of range for a {}-rank fabric", self.n);
        ThreadTransport {
            fabric: Arc::clone(self),
            rank,
        }
    }

    fn edge(&self, from: usize, to: usize) -> &Edge {
        &self.edges[from * self.n + to]
    }

    /// Marks the fabric failed (first message wins) and wakes every waiter.
    pub fn poison(&self, message: &str) {
        {
            let mut p = self.poison.lock();
            if p.is_none() {
                *p = Some(message.to_string());
            }
        }
        // Take each edge lock briefly before notifying so a receiver cannot
        // check the poison flag and then park, missing the wakeup.
        for edge in &self.edges {
            let _guard = edge.state.lock();
            edge.cv.notify_all();
        }
    }

    fn poison_message(&self) -> Option<String> {
        self.poison.lock().clone()
    }
}

/// One rank's endpoint on a [`ThreadFabric`].
pub struct ThreadTransport {
    fabric: Arc<ThreadFabric>,
    rank: usize,
}

impl Transport for ThreadTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.fabric.n
    }

    fn backend(&self) -> &'static str {
        "thread"
    }

    fn send(&mut self, to: usize, frame: &[u8]) {
        let edge = self.fabric.edge(self.rank, to);
        let mut q = edge.state.lock();
        let mut slot = q.free.pop().unwrap_or_default();
        slot.clear();
        slot.extend_from_slice(frame);
        q.ready.push_back(slot);
        edge.cv.notify_all();
    }

    fn recv_into(&mut self, from: usize, buf: &mut Vec<u8>) {
        let edge = self.fabric.edge(from, self.rank);
        let mut q = edge.state.lock();
        loop {
            if let Some(slot) = q.ready.pop_front() {
                buf.clear();
                buf.extend_from_slice(&slot);
                q.free.push(slot);
                return;
            }
            if let Some(msg) = self.fabric.poison_message() {
                panic!("{msg}");
            }
            edge.cv.wait(&mut q);
        }
    }

    fn poison(&self, message: &str) {
        self.fabric.poison(message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_send_order_per_edge() {
        let fabric = ThreadFabric::new(2);
        let mut a = fabric.endpoint(0);
        let mut b = fabric.endpoint(1);
        a.send(1, b"first");
        a.send(1, b"second");
        let mut buf = Vec::new();
        b.recv_into(0, &mut buf);
        assert_eq!(buf, b"first");
        b.recv_into(0, &mut buf);
        assert_eq!(buf, b"second");
    }

    #[test]
    fn delivered_buffers_are_recycled() {
        let fabric = ThreadFabric::new(2);
        let mut a = fabric.endpoint(0);
        let mut b = fabric.endpoint(1);
        let mut buf = Vec::new();
        a.send(1, &[7; 64]);
        b.recv_into(0, &mut buf);
        // The 64-byte buffer is now on the edge's free list; a second send
        // of the same size must reuse it rather than allocate.
        a.send(1, &[9; 64]);
        {
            let q = fabric.edge(0, 1).state.lock();
            assert!(q.free.is_empty(), "the free buffer must have been taken");
            assert_eq!(q.ready.len(), 1);
            assert!(q.ready[0].capacity() >= 64);
        }
        b.recv_into(0, &mut buf);
        assert_eq!(buf, &[9; 64]);
    }

    #[test]
    fn cross_thread_ping_pong() {
        let fabric = ThreadFabric::new(2);
        let f2 = Arc::clone(&fabric);
        let h = std::thread::spawn(move || {
            let mut t = f2.endpoint(1);
            let mut buf = Vec::new();
            for _ in 0..100 {
                t.recv_into(0, &mut buf);
                t.send(0, &buf.clone());
            }
        });
        let mut t = fabric.endpoint(0);
        let mut buf = Vec::new();
        for i in 0..100u32 {
            t.send(1, &i.to_le_bytes());
            t.recv_into(1, &mut buf);
            assert_eq!(buf, i.to_le_bytes());
        }
        h.join().unwrap();
    }

    #[test]
    fn default_barrier_synchronises_ranks() {
        let fabric = ThreadFabric::new(4);
        let mut handles = Vec::new();
        for rank in 1..4 {
            let f = Arc::clone(&fabric);
            handles.push(std::thread::spawn(move || {
                let mut t = f.endpoint(rank);
                t.barrier();
            }));
        }
        fabric.endpoint(0).barrier();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poison_wakes_a_blocked_receiver() {
        let fabric = ThreadFabric::new(2);
        let f2 = Arc::clone(&fabric);
        let h = std::thread::spawn(move || {
            let mut t = f2.endpoint(1);
            let mut buf = Vec::new();
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.recv_into(0, &mut buf))).unwrap_err();
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("rank 0 went down"), "got: {msg}");
        });
        // Give the receiver a moment to park, then poison.
        std::thread::sleep(std::time::Duration::from_millis(20));
        fabric.poison("rank 0 went down");
        h.join().unwrap();
    }

    #[test]
    fn first_poison_message_wins() {
        let fabric = ThreadFabric::new(2);
        fabric.poison("first failure");
        fabric.poison("second failure");
        assert_eq!(fabric.poison_message().as_deref(), Some("first failure"));
    }
}
