//! Versioned little-endian wire codec for transport frames.
//!
//! Every message the collective engine exchanges — rank hellos at bootstrap,
//! per-round contributions, the root's reduced results, poison notices and
//! raw side-channel bytes — is one *frame*: a fixed header (magic, version,
//! kind, flags) followed by kind-specific little-endian fields and an `f64`
//! payload. On byte streams (the TCP backend) frames travel length-prefixed
//! through [`write_frame`] / [`read_frame_into`]; the in-process thread
//! backend hands the same encoded bytes through shared memory, so both
//! backends exercise one codec.
//!
//! Decoding is strict and failures are *typed*: a truncated or garbled frame
//! yields a [`WireError`] naming the offending field instead of a silent
//! wrong answer — the same philosophy as the model-artifact loader.

use std::io::{Read, Write};

/// Leading magic of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"NADW";

/// Current codec version. Decoders reject anything else loudly: the payload
/// layout is not self-describing, so guessing would corrupt consensus state.
pub const WIRE_VERSION: u16 = 1;

/// Hard ceiling on one frame's encoded size (1 GiB). A length prefix beyond
/// this is treated as stream corruption, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Sentinel contribution length meaning "this rank accepts whatever length
/// the root supplies" (allocating broadcast/scatter receivers).
pub const ANY_LEN: u64 = u64::MAX;

const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// What the round's reduction computes over the deposited contributions.
/// Carried on every contribution frame so the root can reject mismatched
/// collectives (the MPI "same collective in the same order" contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundOp {
    /// No payload; synchronisation only.
    Barrier,
    /// Element-wise sum of all contributions (uniform length).
    Sum,
    /// Element-wise max of all contributions (uniform length).
    Max,
    /// Mixed reduction (uniform length): element-wise sum over the first
    /// `sum_len` elements, element-wise max over the rest — the classic
    /// "user-defined MPI op" trick that packs several instrumentation
    /// reductions into one collective.
    SumMax {
        /// Number of leading elements reduced by sum.
        sum_len: usize,
    },
    /// The root's contribution verbatim (broadcast/scatter source).
    CopyRoot,
    /// All contributions concatenated in rank order (lengths may differ).
    Concat,
}

impl RoundOp {
    fn tag(self) -> u8 {
        match self {
            RoundOp::Barrier => 0,
            RoundOp::Sum => 1,
            RoundOp::Max => 2,
            RoundOp::SumMax { .. } => 3,
            RoundOp::CopyRoot => 4,
            RoundOp::Concat => 5,
        }
    }

    fn sum_len(self) -> u64 {
        match self {
            RoundOp::SumMax { sum_len } => sum_len as u64,
            _ => 0,
        }
    }

    fn from_wire(tag: u8, sum_len: u64) -> Result<Self, WireError> {
        Ok(match tag {
            0 => RoundOp::Barrier,
            1 => RoundOp::Sum,
            2 => RoundOp::Max,
            3 => RoundOp::SumMax {
                sum_len: sum_len as usize,
            },
            4 => RoundOp::CopyRoot,
            5 => RoundOp::Concat,
            found => return Err(WireError::BadOp { found }),
        })
    }
}

const KIND_HELLO: u8 = 0;
const KIND_CONTRIBUTION: u8 = 1;
const KIND_RESULT: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_RAW: u8 = 4;

/// A decoding failure, naming the offending field — corrupt frames must
/// diagnose themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before `field` could be read.
    Truncated {
        /// The field being decoded when the bytes ran out.
        field: &'static str,
        /// Bytes the field needs.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The frame does not start with [`WIRE_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame was encoded by a different codec version.
    UnsupportedVersion {
        /// Version stamped on the frame.
        found: u16,
        /// Version this decoder speaks.
        supported: u16,
    },
    /// Unknown frame kind tag.
    BadKind {
        /// The tag found.
        found: u8,
    },
    /// Unknown round-operation tag on a contribution frame.
    BadOp {
        /// The tag found.
        found: u8,
    },
    /// Reserved flag bits were set.
    BadFlags {
        /// The flags byte found.
        found: u8,
    },
    /// A payload section's byte count disagrees with its declared length.
    PayloadSizeMismatch {
        /// The payload section at fault.
        field: &'static str,
        /// Bytes the declared length implies.
        expected_bytes: usize,
        /// Bytes actually present.
        found_bytes: usize,
    },
    /// An error-frame message was not valid UTF-8.
    BadUtf8 {
        /// The field at fault.
        field: &'static str,
    },
    /// Bytes were left over after the last declared field.
    TrailingBytes {
        /// The frame kind that over-ran.
        field: &'static str,
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { field, needed, have } => {
                write!(f, "frame truncated at field `{field}`: needed {needed} bytes, have {have}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?}, expected {WIRE_MAGIC:?}")
            }
            WireError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported wire version {found} (this codec speaks {supported})")
            }
            WireError::BadKind { found } => write!(f, "unknown frame kind tag {found}"),
            WireError::BadOp { found } => write!(f, "unknown round-op tag {found}"),
            WireError::BadFlags { found } => write!(f, "reserved flag bits set: {found:#010b}"),
            WireError::PayloadSizeMismatch {
                field,
                expected_bytes,
                found_bytes,
            } => write!(
                f,
                "payload size mismatch at field `{field}`: declared length implies {expected_bytes} bytes, found {found_bytes}"
            ),
            WireError::BadUtf8 { field } => write!(f, "field `{field}` is not valid UTF-8"),
            WireError::TrailingBytes { field, count } => {
                write!(f, "{count} trailing bytes after the last field of a `{field}` frame")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Borrowed view over a frame's `f64` payload section (little-endian bytes,
/// 8 per element). Reading through the view never allocates.
#[derive(Debug, Clone, Copy)]
pub struct PayloadView<'a>(&'a [u8]);

impl<'a> PayloadView<'a> {
    /// Number of `f64` elements.
    pub fn count(&self) -> usize {
        self.0.len() / 8
    }

    /// Whether the payload carries no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The `i`-th element.
    ///
    /// # Panics
    /// Panics if `i >= count()`.
    pub fn get(&self, i: usize) -> f64 {
        f64::from_le_bytes(self.0[i * 8..i * 8 + 8].try_into().expect("f64 payload slice is 8 bytes"))
    }

    /// Copies every element into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != count()`.
    pub fn copy_to(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.count(), "payload copy_to: length mismatch");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.get(i);
        }
    }

    /// Appends every element to `out` (capacity permitting, no allocation).
    pub fn extend_into(&self, out: &mut Vec<f64>) {
        for i in 0..self.count() {
            out.push(self.get(i));
        }
    }
}

/// Borrowed view over a frame's `u64` length table.
#[derive(Debug, Clone, Copy)]
pub struct LensView<'a>(&'a [u8]);

impl<'a> LensView<'a> {
    /// Number of entries.
    pub fn count(&self) -> usize {
        self.0.len() / 8
    }

    /// The `i`-th entry.
    ///
    /// # Panics
    /// Panics if `i >= count()`.
    pub fn get(&self, i: usize) -> u64 {
        u64::from_le_bytes(self.0[i * 8..i * 8 + 8].try_into().expect("u64 payload slice is 8 bytes"))
    }
}

/// One decoded frame, borrowing its payload sections from the encoded bytes.
#[derive(Debug, Clone, Copy)]
pub enum Frame<'a> {
    /// Bootstrap handshake: identifies the connecting rank and its view of
    /// the cluster size.
    Hello {
        /// The sender's rank.
        rank: u64,
        /// The sender's cluster size (must agree everywhere).
        size: u64,
    },
    /// One rank's deposit into a collective round.
    Contribution {
        /// The sender's round counter (collective-order check).
        round: u64,
        /// The collective operation the sender is executing.
        op: RoundOp,
        /// Whether this is a dead rank's empty tombstone: `len` logical
        /// elements, all treated as exact zeros, no payload bytes on the
        /// wire.
        tombstone: bool,
        /// The sender's simulated arrival clock.
        time: f64,
        /// Logical element count ([`ANY_LEN`] = "whatever the root says").
        len: u64,
        /// The payload elements (empty for tombstones/expectations).
        payload: PayloadView<'a>,
    },
    /// The root's reply closing a collective round.
    Result {
        /// The root's round counter.
        round: u64,
        /// Latest simulated arrival across ranks (gates completion).
        max_time: f64,
        /// Earliest arrival (the spread is the round's skew).
        min_time: f64,
        /// Per-rank contribution lengths in rank order.
        lens: LensView<'a>,
        /// The reduced / copied / concatenated result elements.
        payload: PayloadView<'a>,
    },
    /// A fatal notice: the sender is panicking and every peer should too,
    /// instead of deadlocking in a round that can never complete.
    Error {
        /// The originating panic message.
        message: &'a str,
    },
    /// Uninterpreted bytes (side channels such as the final stats gather).
    Raw {
        /// The bytes.
        bytes: &'a [u8],
    },
}

fn header(buf: &mut Vec<u8>, kind: u8, flags: u8) {
    buf.clear();
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    buf.push(kind);
    buf.push(flags);
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    for &v in vs {
        put_f64(buf, v);
    }
}

/// Encodes a bootstrap hello into `buf` (cleared first; capacity is kept).
pub fn encode_hello(buf: &mut Vec<u8>, rank: u64, size: u64) {
    header(buf, KIND_HELLO, 0);
    put_u64(buf, rank);
    put_u64(buf, size);
}

/// Encodes a round contribution into `buf` (cleared first; capacity is
/// kept). Tombstones carry `len` without payload bytes; the payload slice
/// must otherwise hold exactly `len` elements or be empty (an
/// expectation-only deposit).
pub fn encode_contribution(buf: &mut Vec<u8>, round: u64, op: RoundOp, tombstone: bool, time: f64, len: u64, payload: &[f64]) {
    debug_assert!(
        payload.is_empty() || payload.len() as u64 == len,
        "contribution payload/len disagreement"
    );
    debug_assert!(!tombstone || payload.is_empty(), "tombstones carry no payload");
    header(buf, KIND_CONTRIBUTION, if tombstone { FLAG_TOMBSTONE } else { 0 });
    put_u64(buf, round);
    buf.push(op.tag());
    put_u64(buf, op.sum_len());
    put_f64(buf, time);
    put_u64(buf, len);
    put_f64s(buf, payload);
}

/// Encodes the root's round result into `buf` (cleared first; capacity is
/// kept).
pub fn encode_result(buf: &mut Vec<u8>, round: u64, max_time: f64, min_time: f64, lens: &[u64], payload: &[f64]) {
    header(buf, KIND_RESULT, 0);
    put_u64(buf, round);
    put_f64(buf, max_time);
    put_f64(buf, min_time);
    put_u64(buf, lens.len() as u64);
    for &l in lens {
        put_u64(buf, l);
    }
    put_u64(buf, payload.len() as u64);
    put_f64s(buf, payload);
}

/// Encodes a poison notice into `buf` (cleared first).
pub fn encode_error(buf: &mut Vec<u8>, message: &str) {
    header(buf, KIND_ERROR, 0);
    buf.extend_from_slice(message.as_bytes());
}

/// Encodes uninterpreted bytes into `buf` (cleared first).
pub fn encode_raw(buf: &mut Vec<u8>, bytes: &[u8]) {
    header(buf, KIND_RAW, 0);
    buf.extend_from_slice(bytes);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if have < n {
            return Err(WireError::Truncated { field, needed: n, have });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, field)?[0])
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2, field)?.try_into().expect("take(2) returned 2 bytes"),
        ))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("take(8) returned 8 bytes"),
        ))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8, field)?.try_into().expect("take(8) returned 8 bytes"),
        ))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Decodes one frame, borrowing payload sections from `frame`.
pub fn decode(frame: &[u8]) -> Result<Frame<'_>, WireError> {
    let mut r = Reader { bytes: frame, pos: 0 };
    let magic = r.take(4, "magic")?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic {
            found: magic.try_into().expect("take(4) returned 4 bytes of magic"),
        });
    }
    let version = r.u16("version")?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let kind = r.u8("kind")?;
    let flags = r.u8("flags")?;
    let tombstone = flags & FLAG_TOMBSTONE != 0;
    if flags & !FLAG_TOMBSTONE != 0 || (tombstone && kind != KIND_CONTRIBUTION) {
        return Err(WireError::BadFlags { found: flags });
    }
    match kind {
        KIND_HELLO => {
            let rank = r.u64("hello rank")?;
            let size = r.u64("hello size")?;
            if r.remaining() > 0 {
                return Err(WireError::TrailingBytes {
                    field: "hello",
                    count: r.remaining(),
                });
            }
            Ok(Frame::Hello { rank, size })
        }
        KIND_CONTRIBUTION => {
            let round = r.u64("contribution round")?;
            let op_tag = r.u8("contribution op")?;
            let sum_len = r.u64("contribution sum_len")?;
            let op = RoundOp::from_wire(op_tag, sum_len)?;
            let time = r.f64("contribution time")?;
            let len = r.u64("contribution len")?;
            let payload = r.rest();
            if tombstone && !payload.is_empty() {
                return Err(WireError::PayloadSizeMismatch {
                    field: "tombstone contribution payload",
                    expected_bytes: 0,
                    found_bytes: payload.len(),
                });
            }
            if !payload.is_empty() && (len == ANY_LEN || payload.len() as u64 != len.saturating_mul(8)) {
                return Err(WireError::PayloadSizeMismatch {
                    field: "contribution payload",
                    expected_bytes: len.saturating_mul(8) as usize,
                    found_bytes: payload.len(),
                });
            }
            Ok(Frame::Contribution {
                round,
                op,
                tombstone,
                time,
                len,
                payload: PayloadView(payload),
            })
        }
        KIND_RESULT => {
            let round = r.u64("result round")?;
            let max_time = r.f64("result max_time")?;
            let min_time = r.f64("result min_time")?;
            let lens_count = r.u64("result lens count")? as usize;
            let lens = LensView(r.take(lens_count.saturating_mul(8), "result lens")?);
            let payload_count = r.u64("result payload count")? as usize;
            let payload = PayloadView(r.take(payload_count.saturating_mul(8), "result payload")?);
            if r.remaining() > 0 {
                return Err(WireError::TrailingBytes {
                    field: "result",
                    count: r.remaining(),
                });
            }
            Ok(Frame::Result {
                round,
                max_time,
                min_time,
                lens,
                payload,
            })
        }
        KIND_ERROR => {
            let bytes = r.rest();
            let message = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8 { field: "error message" })?;
            Ok(Frame::Error { message })
        }
        KIND_RAW => Ok(Frame::Raw { bytes: r.rest() }),
        found => Err(WireError::BadKind { found }),
    }
}

/// Writes `frame` to a byte stream with a little-endian `u32` length prefix.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> std::io::Result<()> {
    assert!(frame.len() <= MAX_FRAME_BYTES, "frame exceeds MAX_FRAME_BYTES");
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)
}

/// Reads one length-prefixed frame from a byte stream into `buf` (resized in
/// place; capacity is kept across calls). A length prefix beyond
/// [`MAX_FRAME_BYTES`] is reported as `InvalidData`, not allocated.
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> std::io::Result<()> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length prefix {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 3, 8);
        match decode(&buf).unwrap() {
            Frame::Hello { rank, size } => {
                assert_eq!(rank, 3);
                assert_eq!(size, 8);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn contribution_round_trips_with_payload() {
        let payload = [1.5, -0.0, f64::INFINITY, f64::NAN, 1e-310];
        let mut buf = Vec::new();
        encode_contribution(&mut buf, 7, RoundOp::SumMax { sum_len: 2 }, false, 0.25, 5, &payload);
        match decode(&buf).unwrap() {
            Frame::Contribution {
                round,
                op,
                tombstone,
                time,
                len,
                payload: view,
            } => {
                assert_eq!(round, 7);
                assert_eq!(op, RoundOp::SumMax { sum_len: 2 });
                assert!(!tombstone);
                assert_eq!(time, 0.25);
                assert_eq!(len, 5);
                assert_eq!(view.count(), 5);
                for (i, &want) in payload.iter().enumerate() {
                    assert_eq!(view.get(i).to_bits(), want.to_bits());
                }
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn tombstone_contribution_carries_length_without_payload() {
        let mut buf = Vec::new();
        encode_contribution(&mut buf, 2, RoundOp::Sum, true, 1.0, 400, &[]);
        match decode(&buf).unwrap() {
            Frame::Contribution {
                tombstone, len, payload, ..
            } => {
                assert!(tombstone);
                assert_eq!(len, 400);
                assert!(payload.is_empty());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn result_round_trips() {
        let mut buf = Vec::new();
        encode_result(&mut buf, 9, 2.0, 0.5, &[3, 0, 4], &[1.0, 2.0, 3.0]);
        match decode(&buf).unwrap() {
            Frame::Result {
                round,
                max_time,
                min_time,
                lens,
                payload,
            } => {
                assert_eq!(round, 9);
                assert_eq!(max_time, 2.0);
                assert_eq!(min_time, 0.5);
                assert_eq!(lens.count(), 3);
                assert_eq!((lens.get(0), lens.get(1), lens.get(2)), (3, 0, 4));
                let mut out = vec![0.0; 3];
                payload.copy_to(&mut out);
                assert_eq!(out, vec![1.0, 2.0, 3.0]);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn error_and_raw_round_trip() {
        let mut buf = Vec::new();
        encode_error(&mut buf, "rank 2 is on fire");
        match decode(&buf).unwrap() {
            Frame::Error { message } => assert_eq!(message, "rank 2 is on fire"),
            other => panic!("decoded {other:?}"),
        }
        encode_raw(&mut buf, &[1, 2, 3]);
        match decode(&buf).unwrap() {
            Frame::Raw { bytes } => assert_eq!(bytes, &[1, 2, 3]),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_named() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 0, 1);
        buf[0] = b'X';
        assert!(matches!(decode(&buf), Err(WireError::BadMagic { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 0, 1);
        buf[4] = 0xFF;
        assert_eq!(
            decode(&buf).unwrap_err(),
            WireError::UnsupportedVersion {
                found: u16::from_le_bytes([0xFF, buf[5]]),
                supported: WIRE_VERSION
            }
        );
    }

    #[test]
    fn truncation_names_the_field() {
        let mut buf = Vec::new();
        encode_result(&mut buf, 1, 0.0, 0.0, &[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let err = decode(&buf[..buf.len() - 1]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                field: "result payload",
                needed: 32,
                have: 31
            }
        );
        let err = decode(&buf[..10]).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated {
                field: "result round",
                ..
            }
        ));
    }

    #[test]
    fn reserved_flags_are_rejected() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 0, 1);
        buf[7] = 0b100;
        assert_eq!(decode(&buf).unwrap_err(), WireError::BadFlags { found: 0b100 });
        // A tombstone flag on a non-contribution frame is equally bogus.
        buf[7] = FLAG_TOMBSTONE;
        assert_eq!(decode(&buf).unwrap_err(), WireError::BadFlags { found: FLAG_TOMBSTONE });
    }

    #[test]
    fn payload_length_disagreement_is_rejected() {
        let mut buf = Vec::new();
        encode_contribution(&mut buf, 0, RoundOp::Sum, false, 0.0, 3, &[1.0, 2.0, 3.0]);
        // Chop one payload byte: 23 bytes can no longer be 3 elements.
        buf.pop();
        assert_eq!(
            decode(&buf).unwrap_err(),
            WireError::PayloadSizeMismatch {
                field: "contribution payload",
                expected_bytes: 24,
                found_bytes: 23
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, 0, 1);
        buf.push(0);
        assert_eq!(
            decode(&buf).unwrap_err(),
            WireError::TrailingBytes {
                field: "hello",
                count: 1
            }
        );
    }

    #[test]
    fn stream_framing_round_trips() {
        let mut frame = Vec::new();
        encode_error(&mut frame, "hi");
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        write_frame(&mut stream, &frame).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        let mut out = Vec::new();
        read_frame_into(&mut cursor, &mut out).unwrap();
        assert_eq!(out, frame);
        read_frame_into(&mut cursor, &mut out).unwrap();
        assert_eq!(out, frame);
        // The stream is exhausted: a third read fails cleanly.
        assert!(read_frame_into(&mut cursor, &mut out).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_stream_corruption() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = std::io::Cursor::new(stream);
        let mut out = Vec::new();
        let err = read_frame_into(&mut cursor, &mut out).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
