//! Pluggable point-to-point transports under the collective engine.
//!
//! The collective layer ([`crate::thread_comm`]) is a root-coordinated round
//! protocol over byte frames: every rank sends its contribution to rank 0,
//! rank 0 folds them in fixed rank order and replies with the result. That
//! protocol only needs rank-addressed, order-preserving byte delivery — which
//! is exactly what [`Transport`] abstracts. Two backends implement it:
//!
//! * [`thread::ThreadTransport`] — the simulated in-process cluster: per-edge
//!   pooled mailboxes in shared memory, zero-allocation once warm;
//! * [`tcp::TcpTransport`] — real sockets: one listener per rank, a
//!   connection cache keyed by peer rank, a dedicated send thread fed by an
//!   mpsc channel, length-prefixed frames ([`wire`]).
//!
//! Because the engine's *billing* is driven by the network cost model and the
//! logical payload sizes (never by transport wall time), a scenario produces
//! byte-identical reports on either backend.

pub mod tcp;
pub mod thread;
pub mod wire;

/// Environment variable overriding the transport backend (`thread` or
/// `tcp`).
pub const TRANSPORT_ENV: &str = "NADMM_TRANSPORT";

/// Rank-addressed, order-preserving byte delivery between the ranks of one
/// cluster. Object-safe: the collective engine owns a `Box<dyn Transport>`.
///
/// Contract: frames sent on one (sender, receiver) edge arrive in send
/// order; frames are delivered whole; a dead peer must surface as a loud
/// panic on `recv_into`, never as a silent hang.
pub trait Transport: Send {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks on the fabric.
    fn size(&self) -> usize;

    /// Short backend name for diagnostics ("thread", "tcp").
    fn backend(&self) -> &'static str;

    /// Queues `frame` for delivery to rank `to`. May return before the peer
    /// receives it (both backends are fire-and-forget on the send side).
    fn send(&mut self, to: usize, frame: &[u8]);

    /// Blocks until the next frame from rank `from` arrives and copies it
    /// into `buf` (cleared first; capacity is kept, so warm receives do not
    /// allocate).
    ///
    /// # Panics
    /// Panics when the peer is gone or the fabric was poisoned — a consensus
    /// round that can never complete must fail loudly, not deadlock.
    fn recv_into(&mut self, from: usize, buf: &mut Vec<u8>);

    /// Marks the whole fabric failed with `message` before this rank
    /// panics, so peers blocked in [`Transport::recv_into`] panic too
    /// instead of waiting forever.
    fn poison(&self, message: &str);

    /// Synchronises all ranks at the transport level (bootstrap/teardown;
    /// not billed on the simulated clocks). The default runs a token
    /// barrier over the point-to-point edges: everyone reports to rank 0,
    /// rank 0 releases everyone.
    fn barrier(&mut self) {
        let (rank, n) = (self.rank(), self.size());
        if n == 1 {
            return;
        }
        let mut buf = Vec::new();
        if rank == 0 {
            for peer in 1..n {
                self.recv_into(peer, &mut buf);
            }
            for peer in 1..n {
                self.send(peer, &[]);
            }
        } else {
            self.send(0, &[]);
            self.recv_into(0, &mut buf);
        }
    }
}

/// Which transport backend to run a cluster on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process simulated cluster: one OS thread per rank.
    #[default]
    Thread,
    /// Real sockets: one OS process per rank, loopback or cross-host.
    Tcp,
}

impl TransportKind {
    /// All backends, for exhaustive tests.
    pub const ALL: [TransportKind; 2] = [TransportKind::Thread, TransportKind::Tcp];

    /// The spellings [`TransportKind::parse`] accepts, for error messages.
    pub const ACCEPTED_SPELLINGS: &'static str = "thread (threads, local, sim), tcp (socket, sockets)";

    /// Short name used in specs, flags, and the env override.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Thread => "thread",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses a backend name (trimmed, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "thread" | "threads" | "local" | "sim" => Some(TransportKind::Thread),
            "tcp" | "socket" | "sockets" => Some(TransportKind::Tcp),
            _ => None,
        }
    }

    /// Reads the [`TRANSPORT_ENV`] override; `None` when the variable is
    /// unset (the caller falls back to its flag/spec default).
    ///
    /// # Panics
    /// Panics when the variable is set to an unparseable value, naming the
    /// bad value and the accepted spellings — a typo must not silently run
    /// the wrong backend (the `NADMM_COLLECTIVE_ALGO` / `NADMM_COMPRESSION`
    /// parsers apply the same rule).
    pub fn from_env() -> Option<Self> {
        match std::env::var(TRANSPORT_ENV) {
            Ok(raw) => Some(Self::parse_env_value(&raw)),
            Err(std::env::VarError::NotPresent) => None,
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!(
                    "{TRANSPORT_ENV} is set to a non-UTF-8 value ({raw:?}); accepted values: {}",
                    Self::ACCEPTED_SPELLINGS
                )
            }
        }
    }

    /// Parses the value of the [`TRANSPORT_ENV`] override, panicking with
    /// the accepted spellings when it does not name a backend.
    pub fn parse_env_value(raw: &str) -> Self {
        Self::parse(raw).unwrap_or_else(|| {
            panic!(
                "{TRANSPORT_ENV}='{raw}' does not name a transport backend; accepted values: {}",
                Self::ACCEPTED_SPELLINGS
            )
        })
    }
}

/// Declarative transport selection on a cluster spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TransportSpec {
    /// In-process thread fabric (the default; pre-transport specs decode to
    /// this).
    #[default]
    Thread,
    /// TCP sockets. `peers` lists one `host:port` listen address per rank in
    /// rank order; an empty list defers the addresses to the launcher
    /// (`--peers` / the parent spawner).
    Tcp {
        /// Per-rank listen addresses, rank order. May be empty when the
        /// launcher supplies them at run time.
        peers: Vec<String>,
    },
}

impl TransportSpec {
    /// The backend this spec selects.
    pub fn kind(&self) -> TransportKind {
        match self {
            TransportSpec::Thread => TransportKind::Thread,
            TransportSpec::Tcp { .. } => TransportKind::Tcp,
        }
    }

    /// Checks internal consistency against the cluster's rank count.
    pub fn validate(&self, ranks: usize) -> Result<(), String> {
        match self {
            TransportSpec::Thread => Ok(()),
            TransportSpec::Tcp { peers } => {
                if !peers.is_empty() && peers.len() != ranks {
                    return Err(format!(
                        "tcp transport lists {} peer addresses for {ranks} ranks (need one per rank, or none to defer to the launcher)",
                        peers.len()
                    ));
                }
                for (rank, addr) in peers.iter().enumerate() {
                    if !addr.contains(':') {
                        return Err(format!("tcp peer address `{addr}` for rank {rank} is not host:port"));
                    }
                }
                Ok(())
            }
        }
    }
}

impl serde::Serialize for TransportSpec {
    fn to_value(&self) -> serde::Value {
        match self {
            TransportSpec::Thread => serde::Value::Str("thread".to_string()),
            TransportSpec::Tcp { peers } => serde::Value::Map(vec![(
                "tcp".to_string(),
                serde::Value::Map(vec![(
                    "peers".to_string(),
                    serde::Value::Seq(peers.iter().map(|p| serde::Value::Str(p.clone())).collect()),
                )]),
            )]),
        }
    }
}

impl serde::Deserialize for TransportSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            // Pre-transport specs omit the field entirely; the shim hands
            // deserializers `Null` for missing keys.
            serde::Value::Null => Ok(TransportSpec::default()),
            serde::Value::Str(s) => match TransportKind::parse(s) {
                Some(TransportKind::Thread) => Ok(TransportSpec::Thread),
                Some(TransportKind::Tcp) => Ok(TransportSpec::Tcp { peers: Vec::new() }),
                None => Err(serde::DeError(format!(
                    "`{s}` does not name a transport backend; accepted values: {}",
                    TransportKind::ACCEPTED_SPELLINGS
                ))),
            },
            serde::Value::Map(_) => match v.get("tcp") {
                Some(tcp) => {
                    let peers: Vec<String> = serde::field(tcp, "peers")?;
                    Ok(TransportSpec::Tcp { peers })
                }
                None => Err(serde::DeError(
                    "transport map must be {\"tcp\": {\"peers\": [...]}}".to_string(),
                )),
            },
            other => Err(serde::DeError::expected("transport string or map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn every_accepted_spelling_parses_to_its_backend() {
        for s in ["thread", "threads", "local", "sim", "Thread", " THREADS "] {
            assert_eq!(TransportKind::parse(s), Some(TransportKind::Thread), "spelling {s:?}");
            assert_eq!(TransportKind::parse_env_value(s), TransportKind::Thread);
        }
        for s in ["tcp", "socket", "sockets", "TCP", " Socket "] {
            assert_eq!(TransportKind::parse(s), Some(TransportKind::Tcp), "spelling {s:?}");
            assert_eq!(TransportKind::parse_env_value(s), TransportKind::Tcp);
        }
        for kind in TransportKind::ALL {
            assert_eq!(TransportKind::parse(kind.name()), Some(kind));
        }
    }

    #[test]
    fn rejected_spellings_return_none_from_parse() {
        for s in ["", "udp", "mpi", "thred", "tcp://", "thread,tcp"] {
            assert_eq!(TransportKind::parse(s), None, "spelling {s:?} must be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "NADMM_TRANSPORT='udp' does not name a transport backend")]
    fn garbage_env_value_panics_naming_the_variable() {
        TransportKind::parse_env_value("udp");
    }

    #[test]
    #[should_panic(expected = "accepted values: thread (threads, local, sim), tcp (socket, sockets)")]
    fn garbage_env_value_panics_listing_accepted_spellings() {
        TransportKind::parse_env_value("infiniband");
    }

    #[test]
    #[should_panic(expected = "does not name a transport backend")]
    fn empty_env_value_panics_instead_of_defaulting() {
        TransportKind::parse_env_value("");
    }

    #[test]
    fn spec_round_trips_through_serde() {
        let thread = TransportSpec::Thread;
        assert_eq!(TransportSpec::from_value(&thread.to_value()).unwrap(), thread);
        let tcp = TransportSpec::Tcp {
            peers: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
        };
        assert_eq!(TransportSpec::from_value(&tcp.to_value()).unwrap(), tcp);
        // A pre-transport spec has no key at all: the shim hands `Null`,
        // which must decode as the thread backend.
        assert_eq!(TransportSpec::from_value(&serde::Value::Null).unwrap(), TransportSpec::Thread);
        // A bare "tcp" string defers the peer list to the launcher.
        assert_eq!(
            TransportSpec::from_value(&serde::Value::Str("tcp".into())).unwrap(),
            TransportSpec::Tcp { peers: Vec::new() }
        );
        let err = TransportSpec::from_value(&serde::Value::Str("carrier-pigeon".into())).unwrap_err();
        assert!(err.0.contains("accepted values"), "{}", err.0);
    }

    #[test]
    fn spec_validation_checks_peer_arity_and_shape() {
        assert!(TransportSpec::Thread.validate(4).is_ok());
        assert!(TransportSpec::Tcp { peers: Vec::new() }.validate(4).is_ok());
        let two = TransportSpec::Tcp {
            peers: vec!["a:1".into(), "b:2".into()],
        };
        assert!(two.validate(2).is_ok());
        assert!(two.validate(3).unwrap_err().contains("2 peer addresses for 3 ranks"));
        let bad = TransportSpec::Tcp {
            peers: vec!["localhost".into()],
        };
        assert!(bad.validate(1).unwrap_err().contains("not host:port"));
    }
}
