//! The transport determinism contract: a cluster of ranks connected over
//! loopback TCP sockets must produce bit-identical results, clocks, and
//! stats to the same cluster on the in-process thread fabric. Billing is
//! model-driven (logical payload sizes against the network cost model, never
//! transport wall time), so this holds by construction — these tests pin it.

use nadmm_cluster::transport::tcp::reserve_loopback_peers;
use nadmm_cluster::{Cluster, CommStats, Communicator, Compression, NetworkModel, StragglerModel, TcpTransport};

/// One rank's outcome of the exercise workload.
type Outcome = (Vec<f64>, f64, CommStats);

/// A workload touching every collective tier: allocating, in-place,
/// split-phase (with overlap), rooted, and a tombstone round.
fn exercise(comm: &mut dyn Communicator) -> Outcome {
    let rank = comm.rank() as f64;
    let mut buf: Vec<f64> = (0..257).map(|i| (i as f64 * 0.37).sin() + rank * 0.125).collect();
    comm.allreduce_sum_into(&mut buf);
    comm.advance_compute(1e-4 * (rank + 1.0));
    comm.barrier();
    let gathered = comm.allgather(&[rank * 2.0, -rank]);
    buf.push(gathered[comm.size() - 1][0]);
    let is_root = comm.reduce_sum_root_into(&mut buf);
    if is_root {
        for v in buf.iter_mut() {
            *v *= 0.5;
        }
    }
    comm.broadcast_root_into(&mut buf);
    let h = comm.start_allreduce_sum_max(&[rank, 1.0, -rank, 2.0], 2);
    comm.advance_compute(5e-5);
    let mut inst = [0.0; 4];
    comm.wait_into(h, &mut inst);
    buf.extend_from_slice(&inst);
    if comm.rank() == 1 {
        comm.reduce_sum_root_tombstone(3);
    } else {
        let mut z = vec![rank; 3];
        comm.reduce_sum_root_into(&mut z);
        buf.push(z[0]);
    }
    let scattered = if is_root {
        let parts: Vec<Vec<f64>> = (0..comm.size()).map(|r| vec![r as f64 * 0.3; r + 1]).collect();
        comm.scatter_root(Some(&parts))
    } else {
        comm.scatter_root(None)
    };
    buf.extend_from_slice(&scattered);
    (buf, comm.elapsed(), comm.stats())
}

/// Runs the workload over real TCP sockets: every rank is a thread owning a
/// `TcpTransport` on a loopback full mesh.
fn run_tcp(cluster: &Cluster) -> Vec<Outcome> {
    let n = cluster.size();
    let peers = reserve_loopback_peers(n).expect("loopback ports");
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for rank in 0..n {
            let peers = peers.clone();
            let cluster = cluster.clone();
            handles.push(scope.spawn(move || {
                let transport = TcpTransport::connect(rank, &peers).expect("tcp bootstrap");
                let mut comm = cluster.connect(Box::new(transport));
                exercise(&mut comm)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("tcp rank panicked")).collect()
    })
}

fn assert_bit_identical(thread: &[Outcome], tcp: &[Outcome]) {
    assert_eq!(thread.len(), tcp.len());
    for (rank, ((a_buf, a_t, a_s), (b_buf, b_t, b_s))) in thread.iter().zip(tcp).enumerate() {
        assert_eq!(a_buf.len(), b_buf.len(), "rank {rank} result length deviated");
        for (i, (x, y)) in a_buf.iter().zip(b_buf).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "rank {rank} element {i} deviated across transports: {x} vs {y}"
            );
        }
        assert_eq!(a_t.to_bits(), b_t.to_bits(), "rank {rank} clock deviated");
        assert_eq!(a_s, b_s, "rank {rank} stats deviated");
    }
}

#[test]
fn tcp_backend_is_bit_identical_to_the_thread_backend() {
    let cluster = Cluster::new(4, NetworkModel::infiniband_100g());
    let thread = cluster.run(|comm| exercise(comm));
    let tcp = run_tcp(&cluster);
    assert_bit_identical(&thread, &tcp);
}

#[test]
fn tcp_backend_matches_under_compression_and_stragglers() {
    let cluster = Cluster::new(3, NetworkModel::ethernet_10g())
        .with_compression(Compression::F16)
        .with_straggler(&StragglerModel::jitter(0.5, 42).with_slow_rank(2, 2.0));
    let thread = cluster.run(|comm| exercise(comm));
    let tcp = run_tcp(&cluster);
    assert_bit_identical(&thread, &tcp);
}

#[test]
fn tcp_stats_gather_matches_the_thread_collection() {
    let cluster = Cluster::new(3, NetworkModel::infiniband_100g());
    let thread_stats: Vec<CommStats> = cluster.run(|comm| {
        exercise(comm);
        comm.stats()
    });
    let peers = reserve_loopback_peers(3).expect("loopback ports");
    let gathered = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for rank in 0..3 {
            let peers = peers.clone();
            let cluster = cluster.clone();
            handles.push(scope.spawn(move || {
                let transport = TcpTransport::connect(rank, &peers).expect("tcp bootstrap");
                let mut comm = cluster.connect(Box::new(transport));
                exercise(&mut comm);
                comm.gather_comm_stats()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("tcp rank panicked"))
            .collect::<Vec<_>>()
    });
    assert_eq!(gathered[0].as_ref().expect("root gathers"), &thread_stats);
    assert!(gathered[1].is_none() && gathered[2].is_none());
}
