//! Property tests for the collective engine.
//!
//! Two families of invariants:
//!
//! 1. **Bit-identity** — the cost-model algorithm (naive/tree/ring/rhd) must
//!    never change the *data*: for arbitrary rank counts (2–9) and payload
//!    sizes, every forced algorithm produces results bit-identical to the
//!    forced-naive reference, for every collective shape the solvers use.
//! 2. **Cost-model sanity** — per-algorithm costs are monotone in the
//!    payload size; the stable algorithms (naive, tree, ring) are monotone
//!    in the rank count; and the automatic crossover selection is never
//!    worse than any fixed algorithm and itself monotone in bytes.
//!    (Recursive halving-doubling is deliberately *not* monotone in N for
//!    allreduce: power-of-two rank counts dodge the remainder-fold penalty,
//!    exactly as on real fabrics.)

use nadmm_cluster::{Cluster, CollectiveAlgorithm, CollectiveKind, CollectiveSelector, Communicator, Compression, NetworkModel};
use proptest::prelude::*;

/// One deterministic pseudo-random payload per (rank, length, seed).
fn payload(rank: usize, len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let x = (seed as f64 + 1.0) * 0.1 + rank as f64 * 1.7 + i as f64 * 0.013;
            (x.sin() * 1e3).fract() * 10.0
        })
        .collect()
}

/// Runs the full collective repertoire on a cluster under one selector and
/// returns everything each rank observed.
#[allow(clippy::type_complexity)]
fn repertoire(
    n: usize,
    len: usize,
    seed: u64,
    selector: CollectiveSelector,
) -> Vec<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, f64)> {
    Cluster::new(n, NetworkModel::infiniband_100g())
        .with_collectives(selector)
        .run(|comm| {
            let mine = payload(comm.rank(), len, seed);
            // In-place allreduce sum.
            let mut sum = mine.clone();
            comm.allreduce_sum_into(&mut sum);
            // Reduce to root + broadcast back (the ADMM consensus round).
            let mut consensus = mine.clone();
            if comm.reduce_sum_root_into(&mut consensus) {
                for v in consensus.iter_mut() {
                    *v *= 0.5;
                }
            }
            comm.broadcast_root_into(&mut consensus);
            // Allgather into a flat buffer.
            let mut gathered = vec![0.0; len * comm.size()];
            comm.allgather_into(&mine, &mut gathered);
            // Split-phase fused sum|max allreduce.
            let h = comm.start_allreduce_sum_max(&mine, len / 2);
            let mut fused = vec![0.0; len];
            comm.wait_into(h, &mut fused);
            (sum, consensus, gathered, fused, comm.elapsed())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_algorithm_is_bit_identical_to_the_naive_reference(
        n in 2usize..10,
        len in 1usize..96,
        seed in 0u64..1000,
    ) {
        let reference = repertoire(n, len, seed, CollectiveSelector::Force(CollectiveAlgorithm::Naive));
        for algo in [
            CollectiveAlgorithm::BinomialTree,
            CollectiveAlgorithm::Ring,
            CollectiveAlgorithm::RecursiveHalvingDoubling,
        ] {
            let candidate = repertoire(n, len, seed, CollectiveSelector::Force(algo));
            for (rank, (r, c)) in reference.iter().zip(&candidate).enumerate() {
                prop_assert_eq!(&r.0, &c.0, "allreduce_sum differs on rank {} under {:?}", rank, algo);
                prop_assert_eq!(&r.1, &c.1, "reduce+broadcast differs on rank {} under {:?}", rank, algo);
                prop_assert_eq!(&r.2, &c.2, "allgather differs on rank {} under {:?}", rank, algo);
                prop_assert_eq!(&r.3, &c.3, "fused sum|max differs on rank {} under {:?}", rank, algo);
            }
        }
        // Auto selection also matches (it can only pick from the same menu).
        let auto = repertoire(n, len, seed, CollectiveSelector::Auto);
        for (r, c) in reference.iter().zip(&auto) {
            prop_assert_eq!(&r.0, &c.0);
            prop_assert_eq!(&r.1, &c.1);
            prop_assert_eq!(&r.2, &c.2);
            prop_assert_eq!(&r.3, &c.3);
        }
    }

    #[test]
    fn per_algorithm_cost_is_monotone_in_bytes(
        n in 2usize..10,
        small in 0.0f64..1e6,
        factor in 1.0f64..100.0,
    ) {
        let net = NetworkModel::ethernet_10g();
        let large = small * factor;
        for kind in CollectiveKind::ALL {
            for algo in CollectiveAlgorithm::ALL {
                let a = net.collective_cost(kind, algo, n, small);
                let b = net.collective_cost(kind, algo, n, large);
                prop_assert!(
                    a <= b + 1e-18,
                    "{:?}/{:?} not monotone in bytes: cost({}) = {} > cost({}) = {}",
                    kind, algo, small, a, large, b
                );
            }
        }
    }

    #[test]
    fn stable_algorithms_are_monotone_in_rank_count(
        n in 2usize..16,
        bytes in 0.0f64..1e7,
    ) {
        let net = NetworkModel::infiniband_100g();
        for kind in CollectiveKind::ALL {
            for algo in [
                CollectiveAlgorithm::Naive,
                CollectiveAlgorithm::BinomialTree,
                CollectiveAlgorithm::Ring,
            ] {
                let a = net.collective_cost(kind, algo, n, bytes);
                let b = net.collective_cost(kind, algo, n + 1, bytes);
                prop_assert!(
                    a <= b + 1e-18,
                    "{:?}/{:?} not monotone in ranks: cost(n={}) = {} > cost(n={}) = {}",
                    kind, algo, n, a, n + 1, b
                );
            }
        }
    }

    #[test]
    fn auto_selection_is_optimal_and_monotone_in_bytes(
        n in 2usize..10,
        small in 0.0f64..1e6,
        factor in 1.0f64..100.0,
    ) {
        let net = NetworkModel::infiniband_100g();
        let large = small * factor;
        for kind in CollectiveKind::ALL {
            let (_, auto_small) = net.select(kind, n, small, CollectiveSelector::Auto);
            let (_, auto_large) = net.select(kind, n, large, CollectiveSelector::Auto);
            prop_assert!(auto_small <= auto_large + 1e-18, "auto cost not monotone in bytes for {:?}", kind);
            for algo in CollectiveAlgorithm::ALL {
                prop_assert!(
                    auto_small <= net.collective_cost(kind, algo, n, small) + 1e-18,
                    "auto selection worse than {:?} for {:?}",
                    algo, kind
                );
            }
        }
    }

    #[test]
    fn compressed_allreduce_matches_the_full_width_path_within_tolerance(
        n in 2usize..10,
        len in 1usize..96,
        seed in 0u64..1000,
    ) {
        let run = |compression: Compression| {
            Cluster::new(n, NetworkModel::infiniband_100g())
                .with_compression(compression)
                .run(|comm| {
                    let mut sum = payload(comm.rank(), len, seed);
                    comm.allreduce_sum_into(&mut sum);
                    (sum, comm.stats())
                })
        };
        let exact = run(Compression::None);
        // Explicit `None` must be *exactly* the uncompressed path (same
        // bits), and its wire volume the full logical volume.
        for (rank, (sum, stats)) in exact.iter().enumerate() {
            let reference = run(Compression::None);
            prop_assert_eq!(&reference[rank].0, sum);
            prop_assert_eq!(stats.bytes_sent, stats.logical_bytes_sent);
        }
        for compression in [Compression::F16, Compression::Bf16] {
            let rel = match compression {
                Compression::F16 => nadmm_linalg::half::F16_RELATIVE_ERROR,
                _ => nadmm_linalg::half::BF16_RELATIVE_ERROR,
            };
            let compressed = run(compression);
            for (rank, (sum, stats)) in compressed.iter().enumerate() {
                // Every rank's contribution is quantized once before the
                // full-width reduction: the element-wise error is bounded by
                // the sum of per-contribution relative errors (plus a tiny
                // absolute floor for subnormal wire values).
                for (i, (&got, &want)) in sum.iter().zip(&exact[rank].0).enumerate() {
                    let bound: f64 = (0..n)
                        .map(|r| payload(r, len, seed)[i].abs() * rel + 1e-7)
                        .sum();
                    prop_assert!(
                        (got - want).abs() <= bound,
                        "{} rank {} element {}: {} vs {} (bound {})",
                        compression.name(), rank, i, got, want, bound
                    );
                }
                // The wire carried a quarter of the logical volume.
                prop_assert_eq!(stats.bytes_sent, stats.logical_bytes_sent / 4.0);
                prop_assert_eq!(stats.logical_bytes_sent, exact[rank].1.bytes_sent);
            }
        }
    }

    #[test]
    fn ring_allreduce_beats_tree_above_the_modeled_crossover(
        n in 3usize..10,
        factor in 1.5f64..50.0,
    ) {
        let net = NetworkModel::infiniband_100g();
        if let Some(crossover) = net.crossover_bytes(
            CollectiveKind::Allreduce,
            CollectiveAlgorithm::BinomialTree,
            CollectiveAlgorithm::Ring,
            n,
        ) {
            let above = crossover * factor;
            let below = crossover / factor;
            let ring = |b| net.collective_cost(CollectiveKind::Allreduce, CollectiveAlgorithm::Ring, n, b);
            let tree = |b| net.collective_cost(CollectiveKind::Allreduce, CollectiveAlgorithm::BinomialTree, n, b);
            prop_assert!(ring(above) < tree(above), "ring must win above the crossover (n={})", n);
            prop_assert!(tree(below) <= ring(below), "tree must win below the crossover (n={})", n);
        }
    }
}
