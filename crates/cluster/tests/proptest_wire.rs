//! Property tests for the transport wire codec.
//!
//! Mirrors the artifact-format suite (`proptest_artifact.rs`) for frames:
//!
//! 1. **Round trip** — contribution/result/error/raw frames over arbitrary
//!    payloads (empty, large, f16-compressed values, NaN payloads, ±∞,
//!    negative zero, subnormals) decode back bit-identically.
//! 2. **Corruption is typed** — truncating a frame anywhere, or flipping any
//!    header bit, never panics and never silently succeeds: decoding yields
//!    the specific [`WireError`] variant documented for that region, naming
//!    the field that failed.
//! 3. **Stream framing** — length-prefixed frames round-trip over byte
//!    streams; a truncated stream is a clean IO error, not a hang or panic.

use nadmm_cluster::transport::wire::{
    decode, encode_contribution, encode_error, encode_hello, encode_raw, encode_result, read_frame_into, write_frame, Frame,
    RoundOp, WireError, WIRE_MAGIC, WIRE_VERSION,
};
use nadmm_cluster::Compression;
use proptest::prelude::*;

/// Deterministic payload from sampled parameters: cycles through the bit
/// patterns most likely to break a codec that round-trips through text or
/// arithmetic instead of raw bits.
fn build_payload(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| match (i as u64 + seed) % 9 {
            0 => -0.0,
            1 => f64::NAN,
            2 => f64::from_bits(0x7ff8_dead_beef_cafe), // NaN with payload bits
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::MIN_POSITIVE / 4.0, // subnormal
            6 => Compression::F16.round((i as f64 * 0.37).sin() * 1e3),
            7 => f64::from_bits(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i as u64)),
            _ => i as f64 - seed as f64 * 0.5,
        })
        .collect()
}

/// The op under test, indexed so proptest can sample it.
fn build_op(idx: usize, sum_len: usize) -> RoundOp {
    match idx % 6 {
        0 => RoundOp::Barrier,
        1 => RoundOp::Sum,
        2 => RoundOp::Max,
        3 => RoundOp::SumMax { sum_len },
        4 => RoundOp::CopyRoot,
        _ => RoundOp::Concat,
    }
}

fn bits(payload: &[f64]) -> Vec<u64> {
    payload.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn contributions_round_trip_bit_for_bit(
        len in 0usize..600,
        seed in 0u64..1_000_000,
        round in 0u64..1_000_000,
        op_idx in 0usize..6,
        sum_len in 0usize..600,
        time_seed in 0u64..1_000_000,
    ) {
        let payload = build_payload(len, seed);
        let op = build_op(op_idx, sum_len);
        let time = (time_seed as f64) * 1e-7;
        let mut buf = Vec::new();
        encode_contribution(&mut buf, round, op, false, time, len as u64, &payload);
        match decode(&buf).map_err(|e| format!("decode failed: {e}"))? {
            Frame::Contribution { round: r, op: o, tombstone, time: t, len: l, payload: view } => {
                prop_assert_eq!(r, round);
                prop_assert_eq!(o, op);
                prop_assert!(!tombstone);
                prop_assert_eq!(t.to_bits(), time.to_bits());
                prop_assert_eq!(l, len as u64);
                let mut out = vec![0.0; view.count()];
                view.copy_to(&mut out);
                prop_assert_eq!(bits(&out), bits(&payload), "payload must survive bit-for-bit");
            }
            other => return Err(format!("expected a contribution, decoded {other:?}")),
        }
    }

    #[test]
    fn tombstones_round_trip_any_logical_length(
        len in 0u64..u64::MAX / 2,
        round in 0u64..1_000_000,
    ) {
        let mut buf = Vec::new();
        encode_contribution(&mut buf, round, RoundOp::Sum, true, 0.0, len, &[]);
        match decode(&buf).map_err(|e| format!("decode failed: {e}"))? {
            Frame::Contribution { tombstone, len: l, payload, .. } => {
                prop_assert!(tombstone);
                prop_assert_eq!(l, len);
                prop_assert!(payload.is_empty(), "tombstones never carry payload bytes");
            }
            other => return Err(format!("expected a contribution, decoded {other:?}")),
        }
    }

    #[test]
    fn results_round_trip_bit_for_bit(
        payload_len in 0usize..600,
        seed in 0u64..1_000_000,
        round in 0u64..1_000_000,
        ranks in 1usize..17,
    ) {
        let payload = build_payload(payload_len, seed);
        let lens: Vec<u64> = (0..ranks).map(|r| (r as u64).wrapping_mul(seed) % 1_000).collect();
        let max_time = f64::from_bits(seed.wrapping_mul(3) | 1);
        let min_time = -0.0;
        let mut buf = Vec::new();
        encode_result(&mut buf, round, max_time, min_time, &lens, &payload);
        match decode(&buf).map_err(|e| format!("decode failed: {e}"))? {
            Frame::Result { round: r, max_time: mx, min_time: mn, lens: lv, payload: view } => {
                prop_assert_eq!(r, round);
                prop_assert_eq!(mx.to_bits(), max_time.to_bits());
                prop_assert_eq!(mn.to_bits(), min_time.to_bits());
                prop_assert_eq!(lv.count(), lens.len());
                for (i, &want) in lens.iter().enumerate() {
                    prop_assert_eq!(lv.get(i), want);
                }
                let mut out = vec![0.0; view.count()];
                view.copy_to(&mut out);
                prop_assert_eq!(bits(&out), bits(&payload));
            }
            other => return Err(format!("expected a result, decoded {other:?}")),
        }
    }

    #[test]
    fn error_and_raw_frames_round_trip(
        msg_seed in 0usize..6,
        raw_len in 0usize..2_000,
        raw_seed in 0u64..1_000_000,
    ) {
        let message = ["", "rank 3 died", "π≈3.14159", "multi\nline\npanic", "ζ/0", "tab\tseparated"][msg_seed];
        let mut buf = Vec::new();
        encode_error(&mut buf, message);
        match decode(&buf).map_err(|e| format!("decode failed: {e}"))? {
            Frame::Error { message: m } => prop_assert_eq!(m, message),
            other => return Err(format!("expected an error frame, decoded {other:?}")),
        }
        let raw: Vec<u8> = (0..raw_len).map(|i| (i as u64 ^ raw_seed) as u8).collect();
        encode_raw(&mut buf, &raw);
        match decode(&buf).map_err(|e| format!("decode failed: {e}"))? {
            Frame::Raw { bytes } => prop_assert_eq!(bytes, &raw[..]),
            other => return Err(format!("expected a raw frame, decoded {other:?}")),
        }
    }

    #[test]
    fn truncation_is_always_a_typed_error_naming_a_field(
        len in 0usize..64,
        seed in 0u64..1_000_000,
        cut_fraction in 0.0f64..1.0,
    ) {
        let payload = build_payload(len, seed);
        let mut buf = Vec::new();
        encode_result(&mut buf, 5, 1.0, 0.5, &[len as u64, 0], &payload);
        let cut = ((buf.len() as f64 * cut_fraction) as usize).min(buf.len() - 1);
        match decode(&buf[..cut]) {
            Err(WireError::Truncated { field, needed, have }) => {
                prop_assert!(!field.is_empty(), "a truncation must name its field");
                prop_assert!(have < needed, "truncation arithmetic must be consistent");
            }
            other => return Err(format!("truncation at {cut}/{} must be Truncated, got {other:?}", buf.len())),
        }
    }

    #[test]
    fn contribution_truncation_is_typed_too(
        len in 1usize..64,
        seed in 0u64..1_000_000,
        cut_fraction in 0.0f64..1.0,
    ) {
        let payload = build_payload(len, seed);
        let mut buf = Vec::new();
        encode_contribution(&mut buf, 3, RoundOp::Sum, false, 0.125, len as u64, &payload);
        let cut = ((buf.len() as f64 * cut_fraction) as usize).min(buf.len() - 1);
        // A cut inside the payload section leaves a byte count that cannot
        // match the declared element count; a cut inside the header is a
        // plain truncation. Both are typed, neither panics or succeeds.
        match decode(&buf[..cut]) {
            Err(WireError::Truncated { field, .. }) => prop_assert!(!field.is_empty()),
            Err(WireError::PayloadSizeMismatch { field, expected_bytes, found_bytes }) => {
                prop_assert_eq!(field, "contribution payload");
                prop_assert!(found_bytes < expected_bytes);
            }
            other => return Err(format!("truncation at {cut}/{} must be typed, got {other:?}", buf.len())),
        }
    }

    #[test]
    fn header_bit_flips_land_on_the_documented_error(
        pos in 0usize..8,
        flip_bit in 0u32..8,
        len in 0usize..16,
        seed in 0u64..1_000_000,
    ) {
        let payload = build_payload(len, seed);
        let mut buf = Vec::new();
        encode_contribution(&mut buf, 1, RoundOp::Max, false, 0.0, len as u64, &payload);
        buf[pos] ^= 1u8 << flip_bit;
        let result = decode(&buf);
        if pos < WIRE_MAGIC.len() {
            prop_assert!(
                matches!(result, Err(WireError::BadMagic { .. })),
                "flip in magic at {} must be BadMagic, got {:?}", pos, result
            );
        } else if pos < 6 {
            match result {
                Err(WireError::UnsupportedVersion { found, supported }) => {
                    prop_assert!(found != WIRE_VERSION);
                    prop_assert_eq!(supported, WIRE_VERSION);
                }
                other => return Err(format!("flip in version at {pos} must be UnsupportedVersion, got {other:?}")),
            }
        } else if pos == 6 {
            // The kind byte: the flip either lands on another valid kind tag
            // (the frame then decodes as that kind or fails its stricter
            // field checks) or on an unknown tag. Either way: typed, no
            // panic, and the error — when the tag is unknown — names it.
            if let Err(WireError::BadKind { found }) = result {
                prop_assert_eq!(found, buf[6]);
            }
        } else {
            // The flags byte: only the tombstone bit is defined, and a
            // tombstone with payload bytes is itself a size mismatch.
            prop_assert!(
                matches!(
                    result,
                    Err(WireError::BadFlags { .. }) | Err(WireError::PayloadSizeMismatch { .. }) | Ok(Frame::Contribution { .. })
                ),
                "flip in flags must stay typed, got {:?}", result
            );
        }
    }

    #[test]
    fn stream_framing_round_trips_arbitrary_frame_sequences(
        lens in prop::collection::vec(0usize..80, 1..6),
        seed in 0u64..1_000_000,
    ) {
        // Write a heterogeneous sequence of frames to one stream, then read
        // them all back: every frame must come back byte-identical, in
        // order, and the exhausted stream must fail cleanly.
        let mut stream = Vec::new();
        let mut frames = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            let payload = build_payload(len, seed + i as u64);
            let mut frame = Vec::new();
            match i % 3 {
                0 => encode_contribution(&mut frame, i as u64, RoundOp::Sum, false, 0.5, len as u64, &payload),
                1 => encode_result(&mut frame, i as u64, 1.0, 0.0, &[len as u64], &payload),
                _ => encode_hello(&mut frame, i as u64, lens.len() as u64),
            }
            write_frame(&mut stream, &frame).map_err(|e| format!("write failed: {e}"))?;
            frames.push(frame);
        }
        let mut cursor = std::io::Cursor::new(&stream);
        let mut out = Vec::new();
        for frame in &frames {
            read_frame_into(&mut cursor, &mut out).map_err(|e| format!("read failed: {e}"))?;
            prop_assert_eq!(&out, frame, "framing must be transparent");
            decode(&out).map_err(|e| format!("reread frame must decode: {e}"))?;
        }
        prop_assert!(read_frame_into(&mut cursor, &mut out).is_err(), "the exhausted stream must error");
        // A truncated stream (cut inside the last frame) is an IO error.
        let cut = stream.len() - 1;
        let mut cursor = std::io::Cursor::new(&stream[..cut]);
        let mut last_err = None;
        for _ in 0..frames.len() {
            if let Err(e) = read_frame_into(&mut cursor, &mut out) {
                last_err = Some(e);
                break;
            }
        }
        prop_assert!(last_err.is_some(), "a truncated stream must surface an IO error");
    }
}
