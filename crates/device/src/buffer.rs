//! Device-resident buffers.
//!
//! A [`DeviceBuffer`] models memory that lives on the accelerator. The data
//! is of course plain host memory here, but the constructor / readback APIs
//! mirror a real device runtime (explicit uploads and downloads) so that the
//! optimizers must be explicit about every host↔device movement, and the
//! [`crate::Device`] can charge the transfer cost model for each one.

use serde::{Deserialize, Serialize};

/// A buffer of `f64` values resident on a (simulated) device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceBuffer {
    data: Vec<f64>,
}

impl DeviceBuffer {
    /// Allocates a zero-initialised buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        Self { data: vec![0.0; len] }
    }

    /// Wraps host data that has already been accounted for by
    /// [`crate::Device::upload`]. Not intended to be called directly by
    /// optimizer code.
    pub(crate) fn from_host_unchecked(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the buffer payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Read-only view of the device data (used by kernels executing on the
    /// simulated device).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the device data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the buffer, returning the underlying storage without charging
    /// a transfer (used internally when the "device" hands a result to
    /// another kernel).
    pub(crate) fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape() {
        let b = DeviceBuffer::zeros(5);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert_eq!(b.size_bytes(), 40);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_buffer() {
        let b = DeviceBuffer::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 0);
    }

    #[test]
    fn mutation_round_trip() {
        let mut b = DeviceBuffer::zeros(3);
        b.as_mut_slice()[1] = 2.5;
        assert_eq!(b.as_slice(), &[0.0, 2.5, 0.0]);
        let v = b.into_vec();
        assert_eq!(v, vec![0.0, 2.5, 0.0]);
    }

    #[test]
    fn from_host_wraps_without_copy_semantics() {
        let b = DeviceBuffer::from_host_unchecked(vec![1.0, 2.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.as_slice()[1], 2.0);
    }
}
