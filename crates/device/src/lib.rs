//! # nadmm-device
//!
//! A simulated GPU substrate.
//!
//! The paper runs every solver on Tesla P100 GPUs and attributes a large part
//! of Newton-ADMM's per-epoch advantage to pushing the dense
//! GEMM/Hessian-vector work onto the accelerator. No GPU (nor a mature Rust
//! GPU/autodiff stack) is available in this environment, so this crate
//! substitutes an *execution model*:
//!
//! * every kernel the optimizers need (GEMM, GEMV, AXPY, dot, softmax rows)
//!   is executed numerically on the CPU via `nadmm-linalg` (rayon-parallel),
//!   so all results are bit-for-bit what a real device would produce, and
//! * each launch is charged against an analytic cost model
//!   ([`DeviceSpec`]): `launch_latency + max(flops / throughput,
//!   bytes / memory_bandwidth)`, with host↔device transfers charged as
//!   `latency + bytes / pcie_bandwidth`.
//!
//! The accumulated simulated time ([`Device::elapsed`]) is what the
//! experiment harness reports as "GPU time", which preserves the *relative*
//! per-epoch behaviour the paper relies on (compute-bound GEMMs vs
//! latency-bound small kernels) without the hardware.
//!
//! This crate is the workspace's **execution engine**: every hot-path kernel
//! of the objectives and solvers launches through [`Device`] (in-place
//! variants — `gemm_nt_into`, `gemm_tn_into`, `matvec_into`,
//! `t_matvec_into`, `softmax_rows_into`, the fused `axpy_dot`), with scratch
//! storage pooled in a [`Workspace`] so steady-state solver loops allocate
//! nothing. See the workspace README's "Execution engine" section for the
//! full Device → Workspace → Objective → Solver layering and how to add a
//! real GPU or `f32` backend behind this seam.

pub mod buffer;
pub mod clock;
pub mod device;
pub mod spec;
pub mod workspace;

pub use buffer::DeviceBuffer;
pub use clock::SimClock;
pub use device::{Device, DeviceStats};
pub use spec::{DeviceSpec, Precision};
pub use workspace::{Workspace, WorkspaceStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_compile() {
        let d = Device::new(DeviceSpec::tesla_p100());
        assert_eq!(d.elapsed(), 0.0);
    }
}
