//! Simulated clocks.
//!
//! Both the device substrate and the cluster substrate need a notion of
//! "simulated elapsed time" that is decoupled from the wall clock of the
//! machine running the reproduction. `SimClock` is a simple monotone
//! accumulator of seconds; it is cheap to clone snapshots of and is
//! thread-safe behind the owning structure's synchronisation.

use serde::{Deserialize, Serialize};

/// A monotone accumulator of simulated seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    elapsed: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self { elapsed: 0.0 }
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    /// Panics (in debug builds) if `dt` is negative or NaN — simulated time
    /// never flows backwards.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0 && !dt.is_nan(), "clock advanced by invalid dt={dt}");
        self.elapsed += dt.max(0.0);
    }

    /// Moves the clock forward to `t` if `t` is later than the current time;
    /// otherwise leaves it unchanged. Used to synchronise ranks at barriers.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.elapsed {
            self.elapsed = t;
        }
    }

    /// Total simulated seconds elapsed.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.elapsed = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.elapsed(), 0.0);
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.elapsed() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = SimClock::new();
        c.advance(3.0);
        c.advance_to(2.0);
        assert_eq!(c.elapsed(), 3.0);
        c.advance_to(5.0);
        assert_eq!(c.elapsed(), 5.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = SimClock::new();
        c.advance(7.0);
        c.reset();
        assert_eq!(c.elapsed(), 0.0);
    }

    #[test]
    fn negative_advance_is_clamped_in_release() {
        let mut c = SimClock::new();
        c.advance(1.0);
        // In release builds a negative dt is clamped to zero; in debug it
        // panics (covered by debug_assert), so only exercise the clamp here
        // when debug assertions are off.
        if !cfg!(debug_assertions) {
            c.advance(-5.0);
            assert_eq!(c.elapsed(), 1.0);
        }
    }
}
