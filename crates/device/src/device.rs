//! The simulated device: executes linalg kernels and charges the cost model.

use crate::buffer::DeviceBuffer;
use crate::clock::SimClock;
use crate::spec::DeviceSpec;
use nadmm_linalg::{vector, DenseMatrix, Matrix};
use parking_lot::Mutex;
use std::sync::Arc;

/// Running counters describing everything a device has executed. Useful for
/// the benches and for asserting that an algorithm launched the expected
/// number of kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Number of kernel launches charged.
    pub kernels_launched: u64,
    /// Total floating-point operations charged.
    pub flops: f64,
    /// Total device-memory bytes charged.
    pub bytes_moved: f64,
    /// Total host↔device transfer bytes charged.
    pub transfer_bytes: f64,
    /// Number of host↔device transfers charged.
    pub transfers: u64,
}

/// A simulated accelerator.
///
/// `Device` is cheaply clonable (`Arc` internally) so that a worker can share
/// one device between its objective, solver, and ADMM bookkeeping code; all
/// clones advance the same simulated clock.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    state: Arc<Mutex<DeviceState>>,
}

#[derive(Debug)]
struct DeviceState {
    clock: SimClock,
    stats: DeviceStats,
}

impl Device {
    /// Creates a device with the given hardware spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            state: Arc::new(Mutex::new(DeviceState {
                clock: SimClock::new(),
                stats: DeviceStats::default(),
            })),
        }
    }

    /// Creates a Tesla-P100-class device (the paper's accelerator).
    pub fn p100() -> Self {
        Self::new(DeviceSpec::tesla_p100())
    }

    /// The hardware spec this device simulates.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// Total simulated seconds of device activity so far.
    pub fn elapsed(&self) -> f64 {
        self.state.lock().clock.elapsed()
    }

    /// Snapshot of the execution counters.
    pub fn stats(&self) -> DeviceStats {
        self.state.lock().stats
    }

    /// Resets the clock and counters (e.g. between benchmark repetitions).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.clock.reset();
        s.stats = DeviceStats::default();
    }

    /// Charges a kernel with the given FLOP and byte footprint without
    /// executing anything. Building block for composite operations.
    pub fn charge_kernel(&self, flops: f64, bytes: f64) {
        let dt = self.spec.kernel_time(flops, bytes);
        let mut s = self.state.lock();
        s.clock.advance(dt);
        s.stats.kernels_launched += 1;
        s.stats.flops += flops;
        s.stats.bytes_moved += bytes;
    }

    /// Charges a host→device or device→host transfer of `bytes`.
    pub fn charge_transfer(&self, bytes: f64) {
        let dt = self.spec.transfer_time(bytes);
        let mut s = self.state.lock();
        s.clock.advance(dt);
        s.stats.transfers += 1;
        s.stats.transfer_bytes += bytes;
    }

    /// Uploads host data into a device buffer, charging the transfer.
    pub fn upload(&self, data: &[f64]) -> DeviceBuffer {
        self.charge_transfer(std::mem::size_of_val(data) as f64);
        DeviceBuffer::from_host_unchecked(data.to_vec())
    }

    /// Downloads a device buffer back to the host, charging the transfer.
    pub fn download(&self, buf: &DeviceBuffer) -> Vec<f64> {
        self.charge_transfer(buf.size_bytes() as f64);
        buf.as_slice().to_vec()
    }

    /// Moves a buffer to the host without copying (consumes it), still
    /// charging the transfer.
    pub fn download_into(&self, buf: DeviceBuffer) -> Vec<f64> {
        self.charge_transfer(buf.size_bytes() as f64);
        buf.into_vec()
    }

    // --------------------------------------------------------------------
    // Kernels. Each one executes numerically via nadmm-linalg and charges
    // the roofline cost model with its FLOP / byte footprint.
    // --------------------------------------------------------------------

    /// Margin kernel `Z = X Wᵀ` (`X`: n×p features, `W`: k×p weights).
    pub fn gemm_nt(&self, x: &Matrix, w: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(x.rows(), w.rows());
        self.gemm_nt_into(x, w, &mut out);
        out
    }

    /// In-place margin kernel `out = X Wᵀ` (`out` pre-sized to n×k).
    pub fn gemm_nt_into(&self, x: &Matrix, w: &DenseMatrix, out: &mut DenseMatrix) {
        let n = x.rows() as f64;
        let k = w.rows() as f64;
        let nnz = x.stored_entries() as f64;
        // 2 flops per stored feature entry per output class.
        let flops = 2.0 * nnz * k;
        let bytes = (x.storage_bytes() as f64) + (w.len() as f64 + n * k) * 8.0;
        self.charge_kernel(flops, bytes);
        x.gemm_nt_into(w, out).expect("device gemm_nt: shape mismatch");
    }

    /// Gradient-accumulation kernel `G = Mᵀ X` (`M`: n×k, `X`: n×p).
    pub fn gemm_tn(&self, x: &Matrix, m: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(m.cols(), x.cols());
        self.gemm_tn_into(x, m, &mut out);
        out
    }

    /// In-place gradient-accumulation kernel `out = Mᵀ X` (`out` pre-sized to
    /// k×p).
    pub fn gemm_tn_into(&self, x: &Matrix, m: &DenseMatrix, out: &mut DenseMatrix) {
        let k = m.cols() as f64;
        let nnz = x.stored_entries() as f64;
        let flops = 2.0 * nnz * k;
        let bytes = (x.storage_bytes() as f64) + (m.len() as f64 + k * x.cols() as f64) * 8.0;
        self.charge_kernel(flops, bytes);
        x.gemm_tn_from_dense_into(m, out).expect("device gemm_tn: shape mismatch");
    }

    /// Matrix–vector product `X v`.
    pub fn matvec(&self, x: &Matrix, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.rows()];
        self.matvec_into(x, v, &mut out);
        out
    }

    /// In-place matrix–vector product `out = X v`.
    pub fn matvec_into(&self, x: &Matrix, v: &[f64], out: &mut [f64]) {
        let nnz = x.stored_entries() as f64;
        self.charge_kernel(2.0 * nnz, x.storage_bytes() as f64 + (v.len() + x.rows()) as f64 * 8.0);
        x.matvec_into(v, out).expect("device matvec: shape mismatch");
    }

    /// Transposed matrix–vector product `Xᵀ v`.
    pub fn t_matvec(&self, x: &Matrix, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.cols()];
        self.t_matvec_into(x, v, &mut out);
        out
    }

    /// In-place transposed matrix–vector product `out = Xᵀ v`.
    pub fn t_matvec_into(&self, x: &Matrix, v: &[f64], out: &mut [f64]) {
        let nnz = x.stored_entries() as f64;
        self.charge_kernel(2.0 * nnz, x.storage_bytes() as f64 + (v.len() + x.cols()) as f64 * 8.0);
        x.t_matvec_into(v, out).expect("device t_matvec: shape mismatch");
    }

    /// Dot product of two device-sized vectors.
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.charge_kernel(2.0 * a.len() as f64, (a.len() + b.len()) as f64 * 8.0);
        vector::dot(a, b)
    }

    /// AXPY `y ← a·x + y`.
    pub fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        self.charge_kernel(2.0 * x.len() as f64, (2 * x.len()) as f64 * 8.0);
        vector::axpy(a, x, y);
    }

    /// Fused AXPY + squared norm: `y ← a·x + y`, returning `‖y‖₂²` of the
    /// updated vector. One kernel launch (and one pass over `y`) instead of
    /// the separate [`Device::axpy`] + [`Device::norm2`] pair — this is the
    /// CG residual-update kernel.
    pub fn axpy_dot(&self, a: f64, x: &[f64], y: &mut [f64]) -> f64 {
        self.charge_kernel(4.0 * x.len() as f64, (2 * x.len()) as f64 * 8.0);
        vector::axpy_dot(a, x, y)
    }

    /// Euclidean norm of a device-sized vector.
    pub fn norm2(&self, x: &[f64]) -> f64 {
        self.charge_kernel(2.0 * x.len() as f64, x.len() as f64 * 8.0);
        vector::norm2(x)
    }

    /// Scale `x ← a·x`.
    pub fn scale(&self, a: f64, x: &mut [f64]) {
        self.charge_kernel(x.len() as f64, (2 * x.len()) as f64 * 8.0);
        vector::scale(a, x);
    }

    /// Copy kernel `dst ← src`.
    pub fn copy(&self, src: &[f64], dst: &mut [f64]) {
        self.charge_kernel(0.0, (2 * src.len()) as f64 * 8.0);
        vector::copy(src, dst);
    }

    /// Row-wise softmax-with-reference-class kernel used by the softmax
    /// objective: for each row of `margins` (n×(C−1)), writes the class
    /// probabilities in place and returns the per-row log-partition values.
    pub fn softmax_rows(&self, margins: &mut DenseMatrix) -> Vec<f64> {
        let mut logz = vec![0.0; margins.rows()];
        let mut scratch = vec![0.0; margins.cols()];
        self.softmax_rows_into(margins, &mut scratch, &mut logz);
        logz
    }

    /// In-place row-wise softmax kernel: overwrites each row of `margins`
    /// with its class probabilities and writes the per-row log-partition
    /// values into `logz`. `row_scratch` must have `margins.cols()` elements;
    /// it is the only working storage, so repeated launches with pooled
    /// buffers allocate nothing.
    pub fn softmax_rows_into(&self, margins: &mut DenseMatrix, row_scratch: &mut [f64], logz: &mut [f64]) {
        let n = margins.rows();
        let c = margins.cols();
        assert_eq!(row_scratch.len(), c, "softmax_rows_into: scratch must hold one row");
        assert_eq!(logz.len(), n, "softmax_rows_into: logz must hold one value per row");
        // exp + div per element, max/add per row — call it 5 flops/element.
        self.charge_kernel(5.0 * (n * c) as f64, 2.0 * (n * c) as f64 * 8.0);
        for (i, lz) in logz.iter_mut().enumerate() {
            let row = margins.row_mut(i);
            *lz = nadmm_linalg::reduce::softmax_with_reference(row, row_scratch);
            row.copy_from_slice(row_scratch);
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_linalg::CsrMatrix;

    fn feature_matrix() -> Matrix {
        Matrix::Dense(DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, -1.0, 2.0, 3.0]))
    }

    #[test]
    fn kernels_advance_the_clock_and_counters() {
        let d = Device::p100();
        let x = feature_matrix();
        let w = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, -1.0, 0.5]);
        let z = d.gemm_nt(&x, &w);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(d.elapsed() > 0.0);
        let stats = d.stats();
        assert_eq!(stats.kernels_launched, 1);
        assert!(stats.flops > 0.0);
    }

    #[test]
    fn gemm_results_match_direct_linalg() {
        let d = Device::new(DeviceSpec::cpu_like());
        let x = feature_matrix();
        let w = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, -1.0, 0.5]);
        assert_eq!(d.gemm_nt(&x, &w), x.gemm_nt(&w).unwrap());
        let m = DenseMatrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(d.gemm_tn(&x, &m), x.gemm_tn_from_dense(&m).unwrap());
        let v = [1.0, -1.0];
        assert_eq!(d.matvec(&x, &v), x.matvec(&v).unwrap());
        let u = [1.0, 2.0, 3.0];
        assert_eq!(d.t_matvec(&x, &u), x.t_matvec(&u).unwrap());
    }

    #[test]
    fn sparse_matrices_charge_by_nnz() {
        let dense_dev = Device::p100();
        let sparse_dev = Device::p100();
        let dense_x = Matrix::Dense(DenseMatrix::from_fn(100, 50, |i, j| if j == i % 50 { 1.0 } else { 0.0 }));
        let sparse_x = Matrix::Sparse(CsrMatrix::from_dense(&dense_x.to_dense()));
        let w = DenseMatrix::from_fn(4, 50, |_, j| j as f64 * 0.01);
        let zd = dense_dev.gemm_nt(&dense_x, &w);
        let zs = sparse_dev.gemm_nt(&sparse_x, &w);
        assert_eq!(zd, zs);
        // The sparse kernel touches ~50x fewer entries, so it must be cheaper.
        assert!(sparse_dev.stats().flops < dense_dev.stats().flops);
    }

    #[test]
    fn transfers_are_charged() {
        let d = Device::p100();
        let buf = d.upload(&[1.0, 2.0, 3.0]);
        assert_eq!(buf.len(), 3);
        let back = d.download(&buf);
        assert_eq!(back, vec![1.0, 2.0, 3.0]);
        let owned = d.download_into(buf);
        assert_eq!(owned, vec![1.0, 2.0, 3.0]);
        let s = d.stats();
        assert_eq!(s.transfers, 3);
        assert!(s.transfer_bytes > 0.0);
        assert!(d.elapsed() > 0.0);
    }

    #[test]
    fn vector_kernels_match_linalg() {
        let d = Device::new(DeviceSpec::cpu_like());
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!((d.dot(&a, &b) - 32.0).abs() < 1e-12);
        assert!((d.norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = [1.0, 1.0, 1.0];
        d.axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn softmax_rows_produces_probabilities() {
        let d = Device::p100();
        let mut m = DenseMatrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 5.0, 5.0, 5.0]);
        let logz = d.softmax_rows(&mut m);
        assert_eq!(logz.len(), 2);
        for i in 0..2 {
            let s: f64 = m.row(i).iter().sum();
            assert!(s < 1.0 && s > 0.0);
            assert!(m.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn clones_share_the_clock() {
        let d = Device::p100();
        let d2 = d.clone();
        d2.charge_kernel(1e9, 1e6);
        assert!(d.elapsed() > 0.0);
        assert_eq!(d.elapsed(), d2.elapsed());
        d.reset();
        assert_eq!(d2.elapsed(), 0.0);
        assert_eq!(d2.stats(), DeviceStats::default());
    }
}
