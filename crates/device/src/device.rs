//! The simulated device: executes linalg kernels and charges the cost model.

use crate::buffer::DeviceBuffer;
use crate::clock::SimClock;
use crate::spec::{DeviceSpec, Precision};
use nadmm_linalg::{half, vector, DenseMatrix, Matrix};
use parking_lot::Mutex;
use std::sync::Arc;

/// Running counters describing everything a device has executed. Useful for
/// the benches and for asserting that an algorithm launched the expected
/// number of kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Number of kernel launches charged.
    pub kernels_launched: u64,
    /// Total floating-point operations charged.
    pub flops: f64,
    /// Total device-memory bytes charged.
    pub bytes_moved: f64,
    /// Total host↔device transfer bytes charged.
    pub transfer_bytes: f64,
    /// Number of host↔device transfers charged.
    pub transfers: u64,
}

/// A simulated accelerator.
///
/// `Device` is cheaply clonable (`Arc` internally) so that a worker can share
/// one device between its objective, solver, and ADMM bookkeeping code; all
/// clones advance the same simulated clock.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    state: Arc<Mutex<DeviceState>>,
}

#[derive(Debug)]
struct DeviceState {
    clock: SimClock,
    stats: DeviceStats,
}

impl Device {
    /// Creates a device with the given hardware spec.
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            state: Arc::new(Mutex::new(DeviceState {
                clock: SimClock::new(),
                stats: DeviceStats::default(),
            })),
        }
    }

    /// Creates a Tesla-P100-class device (the paper's accelerator).
    pub fn p100() -> Self {
        Self::new(DeviceSpec::tesla_p100())
    }

    /// The hardware spec this device simulates.
    pub fn spec(&self) -> DeviceSpec {
        self.spec
    }

    /// Total simulated seconds of device activity so far.
    pub fn elapsed(&self) -> f64 {
        self.state.lock().clock.elapsed()
    }

    /// Snapshot of the execution counters.
    pub fn stats(&self) -> DeviceStats {
        self.state.lock().stats
    }

    /// Resets the clock and counters (e.g. between benchmark repetitions).
    pub fn reset(&self) {
        let mut s = self.state.lock();
        s.clock.reset();
        s.stats = DeviceStats::default();
    }

    /// Charges a kernel with the given FLOP and byte footprint without
    /// executing anything. Building block for composite operations.
    pub fn charge_kernel(&self, flops: f64, bytes: f64) {
        let dt = self.spec.kernel_time(flops, bytes);
        let mut s = self.state.lock();
        s.clock.advance(dt);
        s.stats.kernels_launched += 1;
        s.stats.flops += flops;
        s.stats.bytes_moved += bytes;
        drop(s);
        nadmm_trace::span_dur(nadmm_trace::Tag::KernelLaunch, dt);
    }

    /// Charges a kernel like [`Device::charge_kernel`], but with the compute
    /// term running at `precision`'s multiple of the FP64 rate (the caller
    /// passes bytes already scaled to the storage width).
    pub fn charge_kernel_at(&self, precision: Precision, flops: f64, bytes: f64) {
        let dt = self.spec.kernel_time_at(precision, flops, bytes);
        let mut s = self.state.lock();
        s.clock.advance(dt);
        s.stats.kernels_launched += 1;
        s.stats.flops += flops;
        s.stats.bytes_moved += bytes;
        drop(s);
        nadmm_trace::span_dur(nadmm_trace::Tag::KernelLaunch, dt);
    }

    /// Charges a host→device or device→host transfer of `bytes`.
    pub fn charge_transfer(&self, bytes: f64) {
        let dt = self.spec.transfer_time(bytes);
        let mut s = self.state.lock();
        s.clock.advance(dt);
        s.stats.transfers += 1;
        s.stats.transfer_bytes += bytes;
        drop(s);
        nadmm_trace::span_dur(nadmm_trace::Tag::KernelLaunch, dt);
    }

    /// Uploads host data into a device buffer, charging the transfer.
    pub fn upload(&self, data: &[f64]) -> DeviceBuffer {
        self.charge_transfer(std::mem::size_of_val(data) as f64);
        DeviceBuffer::from_host_unchecked(data.to_vec())
    }

    /// Downloads a device buffer back to the host, charging the transfer.
    pub fn download(&self, buf: &DeviceBuffer) -> Vec<f64> {
        self.charge_transfer(buf.size_bytes() as f64);
        buf.as_slice().to_vec()
    }

    /// Moves a buffer to the host without copying (consumes it), still
    /// charging the transfer.
    pub fn download_into(&self, buf: DeviceBuffer) -> Vec<f64> {
        self.charge_transfer(buf.size_bytes() as f64);
        buf.into_vec()
    }

    // --------------------------------------------------------------------
    // Kernels. Each one executes numerically via nadmm-linalg and charges
    // the roofline cost model with its FLOP / byte footprint.
    // --------------------------------------------------------------------

    /// Margin kernel `Z = X Wᵀ` (`X`: n×p features, `W`: k×p weights).
    pub fn gemm_nt(&self, x: &Matrix, w: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(x.rows(), w.rows());
        self.gemm_nt_into(x, w, &mut out);
        out
    }

    /// In-place margin kernel `out = X Wᵀ` (`out` pre-sized to n×k).
    pub fn gemm_nt_into(&self, x: &Matrix, w: &DenseMatrix, out: &mut DenseMatrix) {
        let n = x.rows() as f64;
        let k = w.rows() as f64;
        let nnz = x.stored_entries() as f64;
        // 2 flops per stored feature entry per output class.
        let flops = 2.0 * nnz * k;
        let bytes = (x.storage_bytes() as f64) + (w.len() as f64 + n * k) * 8.0;
        self.charge_kernel(flops, bytes);
        x.gemm_nt_into(w, out).expect("device gemm_nt: shape mismatch");
    }

    /// Gradient-accumulation kernel `G = Mᵀ X` (`M`: n×k, `X`: n×p).
    pub fn gemm_tn(&self, x: &Matrix, m: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(m.cols(), x.cols());
        self.gemm_tn_into(x, m, &mut out);
        out
    }

    /// In-place gradient-accumulation kernel `out = Mᵀ X` (`out` pre-sized to
    /// k×p).
    pub fn gemm_tn_into(&self, x: &Matrix, m: &DenseMatrix, out: &mut DenseMatrix) {
        let k = m.cols() as f64;
        let nnz = x.stored_entries() as f64;
        let flops = 2.0 * nnz * k;
        let bytes = (x.storage_bytes() as f64) + (m.len() as f64 + k * x.cols() as f64) * 8.0;
        self.charge_kernel(flops, bytes);
        x.gemm_tn_from_dense_into(m, out).expect("device gemm_tn: shape mismatch");
    }

    /// Matrix–vector product `X v`.
    pub fn matvec(&self, x: &Matrix, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.rows()];
        self.matvec_into(x, v, &mut out);
        out
    }

    /// In-place matrix–vector product `out = X v`.
    pub fn matvec_into(&self, x: &Matrix, v: &[f64], out: &mut [f64]) {
        let nnz = x.stored_entries() as f64;
        self.charge_kernel(2.0 * nnz, x.storage_bytes() as f64 + (v.len() + x.rows()) as f64 * 8.0);
        x.matvec_into(v, out).expect("device matvec: shape mismatch");
    }

    /// Transposed matrix–vector product `Xᵀ v`.
    pub fn t_matvec(&self, x: &Matrix, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; x.cols()];
        self.t_matvec_into(x, v, &mut out);
        out
    }

    /// In-place transposed matrix–vector product `out = Xᵀ v`.
    pub fn t_matvec_into(&self, x: &Matrix, v: &[f64], out: &mut [f64]) {
        let nnz = x.stored_entries() as f64;
        self.charge_kernel(2.0 * nnz, x.storage_bytes() as f64 + (v.len() + x.cols()) as f64 * 8.0);
        x.t_matvec_into(v, out).expect("device t_matvec: shape mismatch");
    }

    /// Dot product of two device-sized vectors.
    pub fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        self.charge_kernel(2.0 * a.len() as f64, (a.len() + b.len()) as f64 * 8.0);
        vector::dot(a, b)
    }

    /// AXPY `y ← a·x + y`.
    pub fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        self.charge_kernel(2.0 * x.len() as f64, (2 * x.len()) as f64 * 8.0);
        vector::axpy(a, x, y);
    }

    /// Fused AXPY + squared norm: `y ← a·x + y`, returning `‖y‖₂²` of the
    /// updated vector. One kernel launch (and one pass over `y`) instead of
    /// the separate [`Device::axpy`] + [`Device::norm2`] pair — this is the
    /// CG residual-update kernel.
    pub fn axpy_dot(&self, a: f64, x: &[f64], y: &mut [f64]) -> f64 {
        self.charge_kernel(4.0 * x.len() as f64, (2 * x.len()) as f64 * 8.0);
        vector::axpy_dot(a, x, y)
    }

    /// Euclidean norm of a device-sized vector.
    pub fn norm2(&self, x: &[f64]) -> f64 {
        self.charge_kernel(2.0 * x.len() as f64, x.len() as f64 * 8.0);
        vector::norm2(x)
    }

    /// Scale `x ← a·x`.
    pub fn scale(&self, a: f64, x: &mut [f64]) {
        self.charge_kernel(x.len() as f64, (2 * x.len()) as f64 * 8.0);
        vector::scale(a, x);
    }

    /// Copy kernel `dst ← src`.
    pub fn copy(&self, src: &[f64], dst: &mut [f64]) {
        self.charge_kernel(0.0, (2 * src.len()) as f64 * 8.0);
        vector::copy(src, dst);
    }

    /// Row-wise softmax-with-reference-class kernel used by the softmax
    /// objective: for each row of `margins` (n×(C−1)), writes the class
    /// probabilities in place and returns the per-row log-partition values.
    pub fn softmax_rows(&self, margins: &mut DenseMatrix) -> Vec<f64> {
        let mut logz = vec![0.0; margins.rows()];
        let mut scratch = vec![0.0; margins.cols()];
        self.softmax_rows_into(margins, &mut scratch, &mut logz);
        logz
    }

    /// In-place row-wise softmax kernel: overwrites each row of `margins`
    /// with its class probabilities and writes the per-row log-partition
    /// values into `logz`. `row_scratch` must have `margins.cols()` elements;
    /// it is the only working storage, so repeated launches with pooled
    /// buffers allocate nothing.
    pub fn softmax_rows_into(&self, margins: &mut DenseMatrix, row_scratch: &mut [f64], logz: &mut [f64]) {
        let n = margins.rows();
        let c = margins.cols();
        assert_eq!(row_scratch.len(), c, "softmax_rows_into: scratch must hold one row");
        assert_eq!(logz.len(), n, "softmax_rows_into: logz must hold one value per row");
        // exp + div per element, max/add per row — call it 5 flops/element.
        self.charge_kernel(5.0 * (n * c) as f64, 2.0 * (n * c) as f64 * 8.0);
        for (i, lz) in logz.iter_mut().enumerate() {
            let row = margins.row_mut(i);
            *lz = nadmm_linalg::reduce::softmax_with_reference(row, row_scratch);
            row.copy_from_slice(row_scratch);
        }
    }

    // --------------------------------------------------------------------
    // Mixed-precision kernels. Each variant stores operands and results at
    // the spec's `precision` (outputs rounded through the storage format),
    // accumulates in the full-width carrier, and bills the roofline with
    // byte footprints scaled to the storage width and the compute term at
    // the precision's throughput multiple. Results are exactly
    // `precision.round(plain_kernel_result)` — the equivalence the tests
    // pin.
    // --------------------------------------------------------------------

    /// f32→f16/bf16 pack kernel: converts `src` into 16-bit storage. One
    /// launch; one conversion per element, reading full-width and writing
    /// half-width.
    pub fn pack_half_into(&self, precision: Precision, src: &[f64], dst: &mut [u16]) {
        assert_eq!(src.len(), dst.len(), "pack_half_into: length mismatch");
        let n = src.len() as f64;
        self.charge_kernel_at(precision, n, n * (8.0 + 2.0));
        match precision {
            Precision::F16 => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = half::f32_to_f16_bits(s as f32);
                }
            }
            Precision::Bf16 => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = half::f32_to_bf16_bits(s as f32);
                }
            }
            Precision::F32 => panic!("pack_half_into: F32 is not a 16-bit storage format"),
        }
    }

    /// f16/bf16→f32 unpack kernel: the inverse of [`Device::pack_half_into`]
    /// (exact — every 16-bit value is representable in the carrier).
    pub fn unpack_half_into(&self, precision: Precision, src: &[u16], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len(), "unpack_half_into: length mismatch");
        let n = src.len() as f64;
        self.charge_kernel_at(precision, n, n * (2.0 + 8.0));
        match precision {
            Precision::F16 => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = half::f16_bits_to_f32(s) as f64;
                }
            }
            Precision::Bf16 => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d = half::bf16_bits_to_f32(s) as f64;
                }
            }
            Precision::F32 => panic!("unpack_half_into: F32 is not a 16-bit storage format"),
        }
    }

    /// Mixed-precision margin kernel `out = X Wᵀ`: operands stream at the
    /// spec's storage width, products accumulate full-width, and the stored
    /// result is rounded through the storage format.
    pub fn gemm_nt_into_mixed(&self, x: &Matrix, w: &DenseMatrix, out: &mut DenseMatrix) {
        let p = self.spec.precision;
        let n = x.rows() as f64;
        let k = w.rows() as f64;
        let nnz = x.stored_entries() as f64;
        let flops = 2.0 * nnz * k;
        let bpe = p.bytes_per_element();
        // The feature operand's storage shrinks with the element width too
        // (the model scales the whole operand, treating sparse index storage
        // as proportionally packed).
        let bytes = (x.storage_bytes() as f64) * (bpe / 8.0) + (w.len() as f64 + n * k) * bpe;
        self.charge_kernel_at(p, flops, bytes);
        x.gemm_nt_into(w, out).expect("device gemm_nt_mixed: shape mismatch");
        for v in out.as_mut_slice() {
            *v = p.round(*v);
        }
    }

    /// Mixed-precision matrix–vector product `out = X v` (accumulate
    /// full-width, store rounded).
    pub fn matvec_into_mixed(&self, x: &Matrix, v: &[f64], out: &mut [f64]) {
        let p = self.spec.precision;
        let nnz = x.stored_entries() as f64;
        let bpe = p.bytes_per_element();
        let bytes = (x.storage_bytes() as f64) * (bpe / 8.0) + (v.len() + x.rows()) as f64 * bpe;
        self.charge_kernel_at(p, 2.0 * nnz, bytes);
        x.matvec_into(v, out).expect("device matvec_mixed: shape mismatch");
        for o in out.iter_mut() {
            *o = p.round(*o);
        }
    }

    /// Mixed-precision row-wise softmax: probabilities are stored rounded to
    /// the spec's precision; the per-row log-partition values stay
    /// full-width (they feed scalar reductions, not storage).
    pub fn softmax_rows_into_mixed(&self, margins: &mut DenseMatrix, row_scratch: &mut [f64], logz: &mut [f64]) {
        let p = self.spec.precision;
        let n = margins.rows();
        let c = margins.cols();
        assert_eq!(row_scratch.len(), c, "softmax_rows_into_mixed: scratch must hold one row");
        assert_eq!(logz.len(), n, "softmax_rows_into_mixed: logz must hold one value per row");
        self.charge_kernel_at(p, 5.0 * (n * c) as f64, 2.0 * (n * c) as f64 * p.bytes_per_element());
        for (i, lz) in logz.iter_mut().enumerate() {
            let row = margins.row_mut(i);
            *lz = nadmm_linalg::reduce::softmax_with_reference(row, row_scratch);
            for (dst, &src) in row.iter_mut().zip(row_scratch.iter()) {
                *dst = p.round(src);
            }
        }
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_linalg::CsrMatrix;

    fn feature_matrix() -> Matrix {
        Matrix::Dense(DenseMatrix::from_vec(3, 2, vec![1.0, 0.0, 0.5, -1.0, 2.0, 3.0]))
    }

    #[test]
    fn kernels_advance_the_clock_and_counters() {
        let d = Device::p100();
        let x = feature_matrix();
        let w = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, -1.0, 0.5]);
        let z = d.gemm_nt(&x, &w);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(d.elapsed() > 0.0);
        let stats = d.stats();
        assert_eq!(stats.kernels_launched, 1);
        assert!(stats.flops > 0.0);
    }

    #[test]
    fn gemm_results_match_direct_linalg() {
        let d = Device::new(DeviceSpec::cpu_like());
        let x = feature_matrix();
        let w = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, -1.0, 0.5]);
        assert_eq!(d.gemm_nt(&x, &w), x.gemm_nt(&w).unwrap());
        let m = DenseMatrix::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        assert_eq!(d.gemm_tn(&x, &m), x.gemm_tn_from_dense(&m).unwrap());
        let v = [1.0, -1.0];
        assert_eq!(d.matvec(&x, &v), x.matvec(&v).unwrap());
        let u = [1.0, 2.0, 3.0];
        assert_eq!(d.t_matvec(&x, &u), x.t_matvec(&u).unwrap());
    }

    #[test]
    fn sparse_matrices_charge_by_nnz() {
        let dense_dev = Device::p100();
        let sparse_dev = Device::p100();
        let dense_x = Matrix::Dense(DenseMatrix::from_fn(100, 50, |i, j| if j == i % 50 { 1.0 } else { 0.0 }));
        let sparse_x = Matrix::Sparse(CsrMatrix::from_dense(&dense_x.to_dense()));
        let w = DenseMatrix::from_fn(4, 50, |_, j| j as f64 * 0.01);
        let zd = dense_dev.gemm_nt(&dense_x, &w);
        let zs = sparse_dev.gemm_nt(&sparse_x, &w);
        assert_eq!(zd, zs);
        // The sparse kernel touches ~50x fewer entries, so it must be cheaper.
        assert!(sparse_dev.stats().flops < dense_dev.stats().flops);
    }

    #[test]
    fn transfers_are_charged() {
        let d = Device::p100();
        let buf = d.upload(&[1.0, 2.0, 3.0]);
        assert_eq!(buf.len(), 3);
        let back = d.download(&buf);
        assert_eq!(back, vec![1.0, 2.0, 3.0]);
        let owned = d.download_into(buf);
        assert_eq!(owned, vec![1.0, 2.0, 3.0]);
        let s = d.stats();
        assert_eq!(s.transfers, 3);
        assert!(s.transfer_bytes > 0.0);
        assert!(d.elapsed() > 0.0);
    }

    #[test]
    fn vector_kernels_match_linalg() {
        let d = Device::new(DeviceSpec::cpu_like());
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!((d.dot(&a, &b) - 32.0).abs() < 1e-12);
        assert!((d.norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut y = [1.0, 1.0, 1.0];
        d.axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn softmax_rows_produces_probabilities() {
        let d = Device::p100();
        let mut m = DenseMatrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 5.0, 5.0, 5.0]);
        let logz = d.softmax_rows(&mut m);
        assert_eq!(logz.len(), 2);
        for i in 0..2 {
            let s: f64 = m.row(i).iter().sum();
            assert!(s < 1.0 && s > 0.0);
            assert!(m.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn pack_unpack_round_trips_and_is_billed() {
        let d = Device::p100();
        let src: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.37).sin() * 3.0).collect();
        for p in [Precision::F16, Precision::Bf16] {
            let mut packed = vec![0u16; src.len()];
            let mut back = vec![0.0f64; src.len()];
            d.pack_half_into(p, &src, &mut packed);
            d.unpack_half_into(p, &packed, &mut back);
            for (&b, &s) in back.iter().zip(&src) {
                assert_eq!(b, p.round(s), "unpack(pack(x)) must equal the rounding of x at {p:?}");
            }
        }
        assert_eq!(d.stats().kernels_launched, 4);
        assert!(d.elapsed() > 0.0);
    }

    #[test]
    fn mixed_kernels_equal_rounded_full_precision_results() {
        for p in [Precision::F32, Precision::F16, Precision::Bf16] {
            let full = Device::p100();
            let mixed = Device::new(DeviceSpec::tesla_p100().with_precision(p));
            let x = feature_matrix();
            let w = DenseMatrix::from_vec(2, 2, vec![1.0, 1.0, -1.0, 0.5]);

            let z_full = full.gemm_nt(&x, &w);
            let mut z_mixed = DenseMatrix::zeros(3, 2);
            mixed.gemm_nt_into_mixed(&x, &w, &mut z_mixed);
            for (m, f) in z_mixed.as_slice().iter().zip(z_full.as_slice()) {
                assert_eq!(*m, p.round(*f), "gemm at {p:?} must store the rounded accumulation");
            }

            let v = [0.25, -1.5];
            let mv_full = full.matvec(&x, &v);
            let mut mv_mixed = vec![0.0; 3];
            mixed.matvec_into_mixed(&x, &v, &mut mv_mixed);
            for (m, f) in mv_mixed.iter().zip(&mv_full) {
                assert_eq!(*m, p.round(*f));
            }

            let mut margins_full = DenseMatrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 5.0, 5.0, 5.0]);
            let mut margins_mixed = margins_full.clone();
            let mut scratch = vec![0.0; 3];
            let mut logz_full = vec![0.0; 2];
            let mut logz_mixed = vec![0.0; 2];
            full.softmax_rows_into(&mut margins_full, &mut scratch, &mut logz_full);
            mixed.softmax_rows_into_mixed(&mut margins_mixed, &mut scratch, &mut logz_mixed);
            assert_eq!(logz_mixed, logz_full, "log-partition values stay full-width");
            for (m, f) in margins_mixed.as_slice().iter().zip(margins_full.as_slice()) {
                assert_eq!(*m, p.round(*f));
            }
        }
    }

    #[test]
    fn mixed_kernels_are_cheaper_than_full_precision() {
        // A compute-bound GEMM: f16 must beat f32 must beat the FP64 path,
        // both in billed time and in billed bytes.
        let x = Matrix::Dense(DenseMatrix::from_fn(64, 48, |i, j| ((i * 7 + j) as f64 * 0.01).cos()));
        let w = DenseMatrix::from_fn(16, 48, |i, j| ((i + j) as f64 * 0.02).sin());
        let mut out = DenseMatrix::zeros(64, 16);

        let mut elapsed = Vec::new();
        let mut bytes = Vec::new();
        let full = Device::p100();
        full.gemm_nt_into(&x, &w, &mut out);
        elapsed.push(full.elapsed());
        bytes.push(full.stats().bytes_moved);
        for p in [Precision::F32, Precision::F16] {
            let d = Device::new(DeviceSpec::tesla_p100().with_precision(p));
            d.gemm_nt_into_mixed(&x, &w, &mut out);
            elapsed.push(d.elapsed());
            bytes.push(d.stats().bytes_moved);
        }
        assert!(elapsed[1] < elapsed[0], "f32 mixed must beat FP64: {elapsed:?}");
        assert!(elapsed[2] < elapsed[1], "f16 must beat f32: {elapsed:?}");
        assert!(
            bytes[1] == bytes[0] / 2.0 && bytes[2] == bytes[0] / 4.0,
            "storage bytes must scale: {bytes:?}"
        );
    }

    #[test]
    fn clones_share_the_clock() {
        let d = Device::p100();
        let d2 = d.clone();
        d2.charge_kernel(1e9, 1e6);
        assert!(d.elapsed() > 0.0);
        assert_eq!(d.elapsed(), d2.elapsed());
        d.reset();
        assert_eq!(d2.elapsed(), 0.0);
        assert_eq!(d2.stats(), DeviceStats::default());
    }

    #[test]
    fn device_kernels_are_bit_identical_across_pool_widths() {
        // The device's compute path runs on the shared linalg kernels, so
        // the objective's forward pass (gemm_nt + softmax rows) must be
        // bit-invariant to the pool width and the par-threshold cutover —
        // the solver-level determinism guarantee starts here.
        let mut rng = nadmm_linalg::gen::seeded_rng(19);
        let x = Matrix::Dense(nadmm_linalg::gen::gaussian_matrix(40, 12, &mut rng));
        let w = nadmm_linalg::gen::gaussian_matrix(5, 12, &mut rng);
        let run = || {
            let d = Device::new(DeviceSpec::cpu_like());
            let mut margins = DenseMatrix::zeros(40, 5);
            d.gemm_nt_into(&x, &w, &mut margins);
            let logz = d.softmax_rows(&mut margins);
            let mut out: Vec<u64> = margins.as_slice().iter().map(|v| v.to_bits()).collect();
            out.extend(logz.iter().map(|v| v.to_bits()));
            out
        };
        rayon::set_num_threads(1);
        nadmm_linalg::set_par_threshold(usize::MAX);
        let reference = run();
        for width in [2, 3, 8] {
            rayon::set_num_threads(width);
            for threshold in [0, usize::MAX] {
                nadmm_linalg::set_par_threshold(threshold);
                assert_eq!(run(), reference, "width={width} threshold={threshold}");
            }
        }
        nadmm_linalg::reset_par_threshold();
        rayon::reset_num_threads();
    }
}
