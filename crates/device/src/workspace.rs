//! Reusable device-memory workspace.
//!
//! Real GPU runtimes amortise allocation by pooling buffers; `cudaMalloc` in
//! a hot loop is a classic performance bug. [`Workspace`] models the same
//! discipline for the simulated device: solvers and objectives acquire
//! scratch vectors from a size-keyed free list and release them when done,
//! so a Newton-CG inner loop performs **zero heap allocations per iteration**
//! once the pool is warm. [`WorkspaceStats`] exposes hit/miss counters that
//! the tests use to prove exactly that.
//!
//! Ownership model: [`Workspace::acquire`] hands out a plain `Vec<f64>` (the
//! "device buffer" payload) by value, so the borrow checker never sees the
//! pool and the buffer alias at the same time; [`Workspace::release`] returns
//! it to the free list. Contents of an acquired buffer are unspecified —
//! callers must fill or overwrite it.

use crate::buffer::DeviceBuffer;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counters describing pool behaviour since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkspaceStats {
    /// Buffers handed out in total.
    pub acquires: u64,
    /// Acquires served from the free list (no heap allocation).
    pub pool_hits: u64,
    /// Acquires that had to allocate fresh storage.
    pub pool_misses: u64,
    /// Buffers currently held by callers (acquired, not yet released).
    pub outstanding: u64,
}

/// A size-keyed free list of scratch vectors.
#[derive(Debug, Default)]
pub struct Workspace {
    free: HashMap<usize, Vec<Vec<f64>>>,
    stats: WorkspaceStats,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a buffer of exactly `len` elements with **unspecified
    /// contents**. Reuses a pooled buffer when one of the right size is
    /// available, otherwise allocates.
    pub fn acquire(&mut self, len: usize) -> Vec<f64> {
        self.stats.acquires += 1;
        self.stats.outstanding += 1;
        if let Some(buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.stats.pool_hits += 1;
            buf
        } else {
            self.stats.pool_misses += 1;
            vec![0.0; len]
        }
    }

    /// Hands out a buffer of `len` elements filled with zeros.
    pub fn acquire_zeroed(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.acquire(len);
        buf.iter_mut().for_each(|v| *v = 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn release(&mut self, buf: Vec<f64>) {
        self.stats.outstanding = self.stats.outstanding.saturating_sub(1);
        self.free.entry(buf.len()).or_default().push(buf);
    }

    /// Pre-populates the pool with `count` buffers of `len` elements, so the
    /// first hot-loop iteration is already allocation-free.
    pub fn reserve(&mut self, len: usize, count: usize) {
        let entry = self.free.entry(len).or_default();
        while entry.len() < count {
            entry.push(vec![0.0; len]);
        }
    }

    /// Pool behaviour counters since the last [`Workspace::reset_stats`].
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Resets the counters (the pooled buffers are kept).
    pub fn reset_stats(&mut self) {
        let outstanding = self.stats.outstanding;
        self.stats = WorkspaceStats {
            outstanding,
            ..WorkspaceStats::default()
        };
    }

    /// Acquires a pooled [`DeviceBuffer`] (device-resident scratch with
    /// unspecified contents).
    pub fn acquire_buffer(&mut self, len: usize) -> DeviceBuffer {
        DeviceBuffer::from_host_unchecked(self.acquire(len))
    }

    /// Returns a [`DeviceBuffer`] to the pool.
    pub fn release_buffer(&mut self, buf: DeviceBuffer) {
        self.release(buf.into_vec());
    }

    /// Number of buffers currently parked in the free list.
    pub fn pooled_buffers(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Drops all pooled buffers (e.g. between problems of different shapes).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_storage() {
        let mut ws = Workspace::new();
        let a = ws.acquire(16);
        assert_eq!(a.len(), 16);
        let ptr = a.as_ptr();
        ws.release(a);
        let b = ws.acquire(16);
        assert_eq!(b.as_ptr(), ptr, "same-size acquire must reuse the pooled buffer");
        let stats = ws.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.pool_hits, 1);
        assert_eq!(stats.pool_misses, 1);
    }

    #[test]
    fn different_sizes_do_not_alias() {
        let mut ws = Workspace::new();
        let a = ws.acquire(8);
        ws.release(a);
        let b = ws.acquire(9);
        assert_eq!(b.len(), 9);
        assert_eq!(ws.stats().pool_misses, 2);
    }

    #[test]
    fn zeroed_acquire_clears_reused_buffers() {
        let mut ws = Workspace::new();
        let mut a = ws.acquire(4);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.release(a);
        let b = ws.acquire_zeroed(4);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reserve_prewarms_the_pool() {
        let mut ws = Workspace::new();
        ws.reserve(32, 3);
        assert_eq!(ws.pooled_buffers(), 3);
        let _a = ws.acquire(32);
        let _b = ws.acquire(32);
        let _c = ws.acquire(32);
        let s = ws.stats();
        assert_eq!(s.pool_hits, 3);
        assert_eq!(s.pool_misses, 0);
        assert_eq!(s.outstanding, 3);
    }

    #[test]
    fn stats_reset_keeps_buffers() {
        let mut ws = Workspace::new();
        let a = ws.acquire(8);
        ws.release(a);
        ws.reset_stats();
        assert_eq!(ws.stats(), WorkspaceStats::default());
        assert_eq!(ws.pooled_buffers(), 1);
        ws.clear();
        assert_eq!(ws.pooled_buffers(), 0);
    }
}
