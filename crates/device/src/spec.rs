//! Hardware specification used by the device cost model.

use serde::{Deserialize, Serialize};

/// Static description of an accelerator, in SI units (FLOP/s, bytes/s,
/// seconds). The defaults below are the public spec-sheet numbers for the
/// hardware classes the paper used, de-rated to realistic sustained
/// fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"tesla-p100"`.
    pub name: &'static str,
    /// Sustained double-precision throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Sustained device-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed overhead per kernel launch, in seconds.
    pub launch_latency: f64,
    /// Host↔device (PCIe) bandwidth in bytes/s.
    pub pcie_bandwidth: f64,
    /// Fixed latency per host↔device transfer, in seconds.
    pub pcie_latency: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla P100 (the accelerator used in the paper's cluster):
    /// 4.7 TFLOP/s FP64 peak (de-rated to ~60%), 732 GB/s HBM2 (de-rated to
    /// ~70%), ~5 µs launch latency, PCIe gen3 x16 ≈ 12 GB/s.
    pub fn tesla_p100() -> Self {
        Self {
            name: "tesla-p100",
            flops_per_sec: 4.7e12 * 0.6,
            mem_bandwidth: 732.0e9 * 0.7,
            launch_latency: 5.0e-6,
            pcie_bandwidth: 12.0e9,
            pcie_latency: 10.0e-6,
        }
    }

    /// A slower, CPU-like executor (useful for ablations showing how much of
    /// the paper's advantage comes from the accelerator itself): ~100 GFLOP/s
    /// FP64 and ~60 GB/s of memory bandwidth, no launch latency.
    pub fn cpu_like() -> Self {
        Self {
            name: "cpu-like",
            flops_per_sec: 100.0e9,
            mem_bandwidth: 60.0e9,
            launch_latency: 0.0,
            pcie_bandwidth: f64::INFINITY,
            pcie_latency: 0.0,
        }
    }

    /// A generic "fast GPU" roughly one generation newer than the P100
    /// (V100-class): used in scaling ablations.
    pub fn tesla_v100() -> Self {
        Self {
            name: "tesla-v100",
            flops_per_sec: 7.8e12 * 0.6,
            mem_bandwidth: 900.0e9 * 0.7,
            launch_latency: 5.0e-6,
            pcie_bandwidth: 14.0e9,
            pcie_latency: 10.0e-6,
        }
    }

    /// Time to run a kernel touching `flops` floating-point operations and
    /// `bytes` of device memory: launch latency plus the roofline maximum of
    /// the compute and memory terms.
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        let compute = if self.flops_per_sec > 0.0 {
            flops / self.flops_per_sec
        } else {
            0.0
        };
        let memory = if self.mem_bandwidth > 0.0 {
            bytes / self.mem_bandwidth
        } else {
            0.0
        };
        self.launch_latency + compute.max(memory)
    }

    /// Time to move `bytes` across the host↔device link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        if self.pcie_bandwidth.is_infinite() {
            self.pcie_latency
        } else {
            self.pcie_latency + bytes / self.pcie_bandwidth
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::tesla_p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_numbers_are_sane() {
        let s = DeviceSpec::tesla_p100();
        assert!(s.flops_per_sec > 1e12);
        assert!(s.mem_bandwidth > 1e11);
        assert!(s.launch_latency > 0.0);
    }

    #[test]
    fn kernel_time_is_roofline() {
        let s = DeviceSpec::tesla_p100();
        // Compute-bound: lots of flops, few bytes.
        let t_compute = s.kernel_time(1e12, 1e3);
        assert!((t_compute - (s.launch_latency + 1e12 / s.flops_per_sec)).abs() < 1e-12);
        // Memory-bound: few flops, lots of bytes.
        let t_mem = s.kernel_time(1e3, 1e12);
        assert!((t_mem - (s.launch_latency + 1e12 / s.mem_bandwidth)).abs() < 1e-9);
        // Empty kernel still pays the launch.
        assert_eq!(s.kernel_time(0.0, 0.0), s.launch_latency);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let s = DeviceSpec::tesla_p100();
        let t1 = s.transfer_time(1e6);
        let t2 = s.transfer_time(2e6);
        assert!(t2 > t1);
        let free = DeviceSpec::cpu_like();
        assert_eq!(free.transfer_time(1e9), 0.0);
    }

    #[test]
    fn faster_device_is_faster() {
        let p100 = DeviceSpec::tesla_p100();
        let v100 = DeviceSpec::tesla_v100();
        assert!(v100.kernel_time(1e12, 1e9) < p100.kernel_time(1e12, 1e9));
        let cpu = DeviceSpec::cpu_like();
        assert!(cpu.kernel_time(1e12, 1e9) > p100.kernel_time(1e12, 1e9));
    }

    #[test]
    fn default_is_p100() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::tesla_p100());
    }
}
