//! Hardware specification used by the device cost model.

use serde::{Deserialize, Serialize};

/// Storage precision of the mixed-precision device kernels.
///
/// The plain kernels model the paper's FP64 path (8 bytes/element, the
/// spec's base throughput). A `Precision` buys roofline headroom the way
/// real accelerators do: narrower storage (fewer bytes per element through
/// the memory system) and higher arithmetic throughput (FP32 runs 2× FP64
/// on P100-class parts, FP16/BF16 4×), while accumulation stays wide — the
/// mixed kernels compute in the full-width carrier and round only what is
/// *stored*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Single precision: 4 bytes/element, 2× the spec's FP64 throughput.
    #[default]
    F32,
    /// IEEE half precision: 2 bytes/element, 4× FP64 throughput.
    F16,
    /// bfloat16: 2 bytes/element, 4× FP64 throughput (f32 range, 8-bit
    /// mantissa).
    Bf16,
}

impl Precision {
    /// Every precision, in documentation order.
    pub const ALL: [Precision; 3] = [Precision::F32, Precision::F16, Precision::Bf16];

    /// The spellings [`Precision::parse`] accepts, for error messages.
    pub const ACCEPTED_SPELLINGS: &'static str = "f32|fp32|single, f16|fp16|half, bf16|bfloat16";

    /// Canonical lowercase name (also the serialized form).
    pub fn name(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Bf16 => "bf16",
        }
    }

    /// Parses a precision name (case-insensitive, common aliases accepted).
    pub fn parse(raw: &str) -> Option<Precision> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "f32" | "fp32" | "single" => Some(Precision::F32),
            "f16" | "fp16" | "half" => Some(Precision::F16),
            "bf16" | "bfloat16" => Some(Precision::Bf16),
            _ => None,
        }
    }

    /// Bytes per stored element at this precision.
    pub fn bytes_per_element(&self) -> f64 {
        match self {
            Precision::F32 => 4.0,
            Precision::F16 | Precision::Bf16 => 2.0,
        }
    }

    /// Arithmetic-throughput multiplier over the spec's FP64 rate.
    pub fn flops_multiplier(&self) -> f64 {
        match self {
            Precision::F32 => 2.0,
            Precision::F16 | Precision::Bf16 => 4.0,
        }
    }

    /// Rounds a full-width carrier value through this storage format:
    /// exactly what a mixed kernel's store unit does to an accumulated
    /// result.
    pub fn round(&self, x: f64) -> f64 {
        match self {
            Precision::F32 => nadmm_linalg::half::round_f32(x),
            Precision::F16 => nadmm_linalg::half::round_f16(x),
            Precision::Bf16 => nadmm_linalg::half::round_bf16(x),
        }
    }
}

impl Serialize for Precision {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl Deserialize for Precision {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            // Pre-reduced-precision specs omit the field entirely; the shim
            // hands deserializers `Null` for missing keys.
            serde::Value::Null => Ok(Precision::default()),
            serde::Value::Str(s) => Precision::parse(s).ok_or_else(|| {
                serde::DeError(format!(
                    "`{s}` does not name a precision; accepted values: {}",
                    Precision::ACCEPTED_SPELLINGS
                ))
            }),
            other => Err(serde::DeError::expected("precision string", other)),
        }
    }
}

/// Static description of an accelerator, in SI units (FLOP/s, bytes/s,
/// seconds). The defaults below are the public spec-sheet numbers for the
/// hardware classes the paper used, de-rated to realistic sustained
/// fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"tesla-p100"`.
    pub name: &'static str,
    /// Sustained double-precision throughput in FLOP/s.
    pub flops_per_sec: f64,
    /// Sustained device-memory bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed overhead per kernel launch, in seconds.
    pub launch_latency: f64,
    /// Host↔device (PCIe) bandwidth in bytes/s.
    pub pcie_bandwidth: f64,
    /// Fixed latency per host↔device transfer, in seconds.
    pub pcie_latency: f64,
    /// Storage precision of the mixed-precision kernels
    /// ([`crate::Device::gemm_nt_into_mixed`] and friends). The plain
    /// kernels ignore it and stay on the FP64 path.
    pub precision: Precision,
}

impl DeviceSpec {
    /// NVIDIA Tesla P100 (the accelerator used in the paper's cluster):
    /// 4.7 TFLOP/s FP64 peak (de-rated to ~60%), 732 GB/s HBM2 (de-rated to
    /// ~70%), ~5 µs launch latency, PCIe gen3 x16 ≈ 12 GB/s.
    pub fn tesla_p100() -> Self {
        Self {
            name: "tesla-p100",
            flops_per_sec: 4.7e12 * 0.6,
            mem_bandwidth: 732.0e9 * 0.7,
            launch_latency: 5.0e-6,
            pcie_bandwidth: 12.0e9,
            pcie_latency: 10.0e-6,
            precision: Precision::F32,
        }
    }

    /// A slower, CPU-like executor (useful for ablations showing how much of
    /// the paper's advantage comes from the accelerator itself): ~100 GFLOP/s
    /// FP64 and ~60 GB/s of memory bandwidth, no launch latency.
    pub fn cpu_like() -> Self {
        Self {
            name: "cpu-like",
            flops_per_sec: 100.0e9,
            mem_bandwidth: 60.0e9,
            launch_latency: 0.0,
            pcie_bandwidth: f64::INFINITY,
            pcie_latency: 0.0,
            precision: Precision::F32,
        }
    }

    /// A generic "fast GPU" roughly one generation newer than the P100
    /// (V100-class): used in scaling ablations.
    pub fn tesla_v100() -> Self {
        Self {
            name: "tesla-v100",
            flops_per_sec: 7.8e12 * 0.6,
            mem_bandwidth: 900.0e9 * 0.7,
            launch_latency: 5.0e-6,
            pcie_bandwidth: 14.0e9,
            pcie_latency: 10.0e-6,
            precision: Precision::F32,
        }
    }

    /// Returns the same spec with a different mixed-kernel storage precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Time to run a kernel touching `flops` floating-point operations and
    /// `bytes` of device memory: launch latency plus the roofline maximum of
    /// the compute and memory terms.
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        let compute = if self.flops_per_sec > 0.0 {
            flops / self.flops_per_sec
        } else {
            0.0
        };
        let memory = if self.mem_bandwidth > 0.0 {
            bytes / self.mem_bandwidth
        } else {
            0.0
        };
        self.launch_latency + compute.max(memory)
    }

    /// Per-precision roofline: like [`DeviceSpec::kernel_time`], but the
    /// compute term runs at the precision's multiple of the FP64 rate. The
    /// byte footprint is whatever the caller already scaled to the storage
    /// width.
    pub fn kernel_time_at(&self, precision: Precision, flops: f64, bytes: f64) -> f64 {
        let rate = self.flops_per_sec * precision.flops_multiplier();
        let compute = if rate > 0.0 { flops / rate } else { 0.0 };
        let memory = if self.mem_bandwidth > 0.0 {
            bytes / self.mem_bandwidth
        } else {
            0.0
        };
        self.launch_latency + compute.max(memory)
    }

    /// Time to move `bytes` across the host↔device link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        if self.pcie_bandwidth.is_infinite() {
            self.pcie_latency
        } else {
            self.pcie_latency + bytes / self.pcie_bandwidth
        }
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::tesla_p100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_numbers_are_sane() {
        let s = DeviceSpec::tesla_p100();
        assert!(s.flops_per_sec > 1e12);
        assert!(s.mem_bandwidth > 1e11);
        assert!(s.launch_latency > 0.0);
    }

    #[test]
    fn kernel_time_is_roofline() {
        let s = DeviceSpec::tesla_p100();
        // Compute-bound: lots of flops, few bytes.
        let t_compute = s.kernel_time(1e12, 1e3);
        assert!((t_compute - (s.launch_latency + 1e12 / s.flops_per_sec)).abs() < 1e-12);
        // Memory-bound: few flops, lots of bytes.
        let t_mem = s.kernel_time(1e3, 1e12);
        assert!((t_mem - (s.launch_latency + 1e12 / s.mem_bandwidth)).abs() < 1e-9);
        // Empty kernel still pays the launch.
        assert_eq!(s.kernel_time(0.0, 0.0), s.launch_latency);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let s = DeviceSpec::tesla_p100();
        let t1 = s.transfer_time(1e6);
        let t2 = s.transfer_time(2e6);
        assert!(t2 > t1);
        let free = DeviceSpec::cpu_like();
        assert_eq!(free.transfer_time(1e9), 0.0);
    }

    #[test]
    fn faster_device_is_faster() {
        let p100 = DeviceSpec::tesla_p100();
        let v100 = DeviceSpec::tesla_v100();
        assert!(v100.kernel_time(1e12, 1e9) < p100.kernel_time(1e12, 1e9));
        let cpu = DeviceSpec::cpu_like();
        assert!(cpu.kernel_time(1e12, 1e9) > p100.kernel_time(1e12, 1e9));
    }

    #[test]
    fn default_is_p100() {
        assert_eq!(DeviceSpec::default(), DeviceSpec::tesla_p100());
        assert_eq!(DeviceSpec::default().precision, Precision::F32);
    }

    #[test]
    fn precision_names_parse_back() {
        for p in Precision::ALL {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse(" FP16 "), Some(Precision::F16));
        assert_eq!(Precision::parse("bfloat16"), Some(Precision::Bf16));
        assert_eq!(Precision::parse("single"), Some(Precision::F32));
        assert_eq!(Precision::parse("f64"), None);
        assert_eq!(Precision::parse(""), None);
    }

    #[test]
    fn per_precision_roofline_is_faster_in_reduced_precision() {
        let s = DeviceSpec::tesla_p100();
        // Compute-bound shape: f16 runs 2× faster than f32, 4× than FP64.
        let flops = 1e12;
        let t64 = s.kernel_time(flops, 1e3);
        let t32 = s.kernel_time_at(Precision::F32, flops, 1e3);
        let t16 = s.kernel_time_at(Precision::F16, flops, 1e3);
        assert!(t32 < t64 && t16 < t32);
        assert!(
            ((t16 - s.launch_latency) * 4.0 - (t64 - s.launch_latency)).abs() < 1e-12,
            "f16 compute term must be a quarter of the FP64 one"
        );
        // Memory-bound shape: the byte term is untouched (the caller scales
        // the bytes, not the bandwidth).
        let m64 = s.kernel_time(1.0, 1e12);
        let m16 = s.kernel_time_at(Precision::F16, 1.0, 1e12);
        assert_eq!(m64, m16);
    }

    #[test]
    fn precision_serde_round_trips_and_defaults_to_f32() {
        use serde::{Deserialize as _, Serialize as _};
        for p in Precision::ALL {
            let back = Precision::from_value(&p.to_value()).unwrap();
            assert_eq!(back, p);
        }
        // Missing field (Null) is the pre-v2 spelling of F32.
        assert_eq!(Precision::from_value(&serde::Value::Null).unwrap(), Precision::F32);
        let err = Precision::from_value(&serde::Value::Str("f8".into())).unwrap_err();
        assert!(
            err.0.contains("accepted values") && err.0.contains("bf16"),
            "parse error must list the accepted spellings: {err}"
        );
        // A spec without the field parses (old JSON), one with it honors it.
        let spec = DeviceSpec::tesla_p100().with_precision(Precision::F16);
        let v = spec.to_value();
        assert_eq!(DeviceSpec::from_value(&v).unwrap(), spec);
        let stripped = match v {
            serde::Value::Map(entries) => serde::Value::Map(entries.into_iter().filter(|(k, _)| k != "precision").collect()),
            _ => unreachable!("specs serialize as maps"),
        };
        assert_eq!(
            DeviceSpec::from_value(&stripped).unwrap(),
            DeviceSpec::tesla_p100(),
            "a pre-v2 spec (no precision key) must load as F32"
        );
    }
}
