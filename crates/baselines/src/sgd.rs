//! Distributed synchronous minibatch SGD (the paper's Figure 4 comparator).
//!
//! Every worker repeatedly samples a minibatch from its shard, computes the
//! minibatch gradient, and a *synchronous allreduce per minibatch* averages
//! the gradients before the shared iterate is updated. One epoch is one pass
//! over the local shard (`⌈n_local / batch⌉` minibatches), so the number of
//! communication rounds per epoch is large — exactly the overhead the paper
//! contrasts with Newton-ADMM's single round.

use crate::common::{local_objective_on, record_iteration, DistributedRun, EngineSync};
use nadmm_cluster::{Cluster, Communicator};
use nadmm_data::Dataset;
use nadmm_device::{Device, DeviceSpec};
use nadmm_linalg::{gen, vector};
use nadmm_metrics::RunHistory;
use nadmm_objective::{Objective, SoftmaxCrossEntropy};
use nadmm_solver::validate::{require_non_negative, require_nonzero, require_positive, require_unit_coefficient, ConfigError};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Synchronous SGD configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncSgdConfig {
    /// Number of epochs (full passes over each local shard).
    pub epochs: usize,
    /// Global L2 regularization weight λ.
    pub lambda: f64,
    /// Minibatch size per worker (the paper uses 128).
    pub batch_size: usize,
    /// Step size η (the paper grid-searches 1e-8…1e8 and reports the best).
    pub step_size: f64,
    /// Momentum coefficient (0 disables momentum, as in plain synchronous
    /// SGD).
    pub momentum: f64,
    /// RNG seed for minibatch sampling.
    pub seed: u64,
    /// Hardware model for local compute time.
    pub device: DeviceSpec,
}

impl Default for SyncSgdConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            lambda: 1e-5,
            batch_size: 128,
            step_size: 1e-2,
            momentum: 0.0,
            seed: 0,
            device: DeviceSpec::tesla_p100(),
        }
    }
}

impl SyncSgdConfig {
    /// Rejects zero budgets and out-of-range step/momentum values.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_nonzero("SyncSgdConfig", "epochs", self.epochs)?;
        require_non_negative("SyncSgdConfig", "lambda", self.lambda)?;
        require_nonzero("SyncSgdConfig", "batch_size", self.batch_size)?;
        require_positive("SyncSgdConfig", "step_size", self.step_size)?;
        require_unit_coefficient("SyncSgdConfig", "momentum", self.momentum)
    }
}

/// The distributed synchronous SGD solver.
#[derive(Debug, Clone, Default)]
pub struct SyncSgd {
    config: SyncSgdConfig,
}

impl SyncSgd {
    /// Creates a solver with the given configuration.
    pub fn new(config: SyncSgdConfig) -> Self {
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &SyncSgdConfig {
        &self.config
    }

    /// Runs synchronous SGD inside one rank of a communicator.
    pub fn run_distributed(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> DistributedRun {
        let cfg = &self.config;
        let n_workers = comm.size();
        let device = Device::new(cfg.device);
        let local = local_objective_on(shard, cfg.lambda, n_workers, &device);
        let mut engine = EngineSync::new(&device);
        let dim = local.dim();
        let n_local = shard.num_samples();
        let batch = cfg.batch_size.min(n_local.max(1));
        let batches_per_epoch = n_local.div_ceil(batch).max(1);
        let mut rng = gen::seeded_rng(cfg.seed.wrapping_add(comm.rank() as u64 * 7919));

        let mut w = vec![0.0; dim];
        let mut velocity = vec![0.0; dim];
        let mut g = vec![0.0; dim];
        let mut ws = nadmm_device::Workspace::new();
        let wall_start = Instant::now();
        let mut history = RunHistory::new("sync-sgd", shard.name(), n_workers);
        record_iteration(comm, &local, &mut engine, test, &w, 0, wall_start, &mut history);

        for epoch in 1..=cfg.epochs {
            for _ in 0..batches_per_epoch {
                let idx = gen::sample_without_replacement(n_local, batch, &mut rng);
                let mini = shard.select(&idx);
                // Minibatch objective scaled so that it estimates the *local*
                // sum objective (loss scaled up by n_local/batch, plus this
                // worker's regulariser share). The minibatch kernels launch
                // on the rank's shared device engine.
                let mini_obj = SoftmaxCrossEntropy::new(&mini, 0.0).with_device(device.clone());
                mini_obj.gradient_into(&w, &mut g, &mut ws);
                vector::scale(n_local as f64 / batch as f64, &mut g);
                vector::axpy(cfg.lambda / n_workers as f64, &w, &mut g);
                engine.sync(comm, &device);
                // Synchronous in-place allreduce per minibatch (this is the
                // expensive part the paper points at).
                comm.allreduce_sum_into(&mut g);
                // Normalise by the total sample count so the step size has a
                // per-sample scale (standard minibatch SGD convention).
                let total_samples = comm.allreduce_scalar_sum(n_local as f64).max(1.0);
                if cfg.momentum > 0.0 {
                    for i in 0..dim {
                        velocity[i] = cfg.momentum * velocity[i] - cfg.step_size * g[i] / total_samples;
                        w[i] += velocity[i];
                    }
                } else {
                    vector::axpy(-cfg.step_size / total_samples, &g, &mut w);
                }
            }
            record_iteration(comm, &local, &mut engine, test, &w, epoch, wall_start, &mut history);
        }

        DistributedRun {
            w,
            history,
            comm_stats: comm.stats(),
            workspace: ws.stats(),
        }
    }

    /// Convenience wrapper spawning one rank per shard.
    ///
    /// Superseded by the experiment layer (`nadmm-experiment`): build an
    /// `Experiment` with `SolverSpec::SyncSgd` instead.
    #[deprecated(
        since = "0.1.0",
        note = "use the `nadmm-experiment` builder (`SolverSpec::SyncSgd`) instead"
    )]
    pub fn run_cluster(&self, cluster: &Cluster, shards: &[Dataset], test: Option<&Dataset>) -> DistributedRun {
        let mut outputs = cluster.run_sharded(shards, |comm, shard| self.run_distributed(comm, shard, test));
        outputs.swap_remove(0)
    }

    /// Runs the paper's protocol of grid-searching the step size and
    /// reporting the best run (by final objective). `grid` is the list of
    /// candidate step sizes.
    ///
    /// Superseded by the experiment layer (`nadmm-experiment`): build an
    /// `Experiment` with `SolverSpec::SyncSgdGrid` instead.
    ///
    /// # Panics
    /// Panics if the grid is empty or no candidate produces a finite
    /// objective.
    #[deprecated(
        since = "0.1.0",
        note = "use the `nadmm-experiment` builder (`SolverSpec::SyncSgdGrid`) instead"
    )]
    pub fn run_cluster_best_of_grid(
        &self,
        cluster: &Cluster,
        shards: &[Dataset],
        test: Option<&Dataset>,
        grid: &[f64],
    ) -> DistributedRun {
        assert!(!grid.is_empty(), "step-size grid must not be empty");
        let mut best: Option<DistributedRun> = None;
        for &step in grid {
            let cfg = SyncSgdConfig {
                step_size: step,
                ..self.config
            };
            let mut outputs = cluster.run_sharded(shards, |comm, shard| SyncSgd::new(cfg).run_distributed(comm, shard, test));
            let run = outputs.swap_remove(0);
            let candidate_obj = run.history.final_objective().unwrap_or(f64::INFINITY);
            let is_better = best
                .as_ref()
                .and_then(|b| b.history.final_objective())
                .map(|b| candidate_obj < b)
                .unwrap_or(true);
            if candidate_obj.is_finite() && is_better {
                best = Some(run);
            }
        }
        best.expect("at least one SGD run must produce a finite objective")
    }
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated `run_cluster*` wrappers stay under test
mod tests {
    use super::*;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::{partition_weak, SyntheticConfig};

    fn dataset(n: usize, seed: u64) -> (Dataset, Dataset) {
        SyntheticConfig::mnist_like()
            .with_train_size(n)
            .with_test_size(n / 4)
            .with_num_features(6)
            .with_num_classes(3)
            .generate(seed)
    }

    #[test]
    fn sgd_reduces_the_objective_and_improves_accuracy() {
        let (train, test) = dataset(120, 1);
        let (shards, _) = partition_weak(&train, 2, 60);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = SyncSgdConfig {
            epochs: 10,
            lambda: 1e-3,
            batch_size: 16,
            step_size: 0.5,
            ..Default::default()
        };
        let run = SyncSgd::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let first = run.history.records[0].objective;
        let last = run.history.final_objective().unwrap();
        assert!(last < first, "SGD should reduce the objective: {first} -> {last}");
        assert!(run.history.final_accuracy().unwrap() >= run.history.records[0].test_accuracy.unwrap());
    }

    #[test]
    fn sgd_communicates_once_per_minibatch() {
        let (train, _) = dataset(64, 2);
        let (shards, _) = partition_weak(&train, 2, 32);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = SyncSgdConfig {
            epochs: 2,
            batch_size: 8,
            lambda: 1e-3,
            step_size: 0.1,
            ..Default::default()
        };
        let run = SyncSgd::new(cfg).run_cluster(&cluster, &shards, None);
        // 32/8 = 4 minibatches per epoch, each with 2 collectives (gradient +
        // sample count), plus 1 instrumentation allreduce per epoch and one
        // for epoch 0.
        let expected = 2 * (4 * 2 + 1) + 1;
        assert_eq!(run.comm_stats.collectives, expected as u64);
    }

    #[test]
    fn grid_search_returns_the_best_run() {
        let (train, _) = dataset(60, 3);
        let (shards, _) = partition_weak(&train, 2, 30);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = SyncSgdConfig {
            epochs: 5,
            batch_size: 10,
            lambda: 1e-3,
            ..Default::default()
        };
        let run = SyncSgd::new(cfg).run_cluster_best_of_grid(&cluster, &shards, None, &[1e-6, 0.5, 1e3]);
        // The middle step size should win; a tiny step barely moves and a
        // huge step diverges (non-finite objectives are rejected).
        let final_obj = run.history.final_objective().unwrap();
        assert!(final_obj.is_finite());
        let tiny_run = SyncSgd::new(SyncSgdConfig { step_size: 1e-6, ..cfg }).run_cluster(&cluster, &shards, None);
        assert!(final_obj <= tiny_run.history.final_objective().unwrap() + 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_grid_is_rejected() {
        let (train, _) = dataset(40, 4);
        let (shards, _) = partition_weak(&train, 2, 20);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        SyncSgd::new(SyncSgdConfig::default()).run_cluster_best_of_grid(&cluster, &shards, None, &[]);
    }
}
