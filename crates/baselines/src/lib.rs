//! # nadmm-baselines
//!
//! The distributed solvers the paper compares Newton-ADMM against, all built
//! on the same substrates (`nadmm-cluster` for communication and timing,
//! `nadmm-objective` for the softmax loss):
//!
//! * [`giant`] — GIANT (Wang et al.): globally improved approximate Newton;
//!   three communication rounds per iteration (gradient allreduce, direction
//!   allreduce, distributed line search over a fixed step-size set).
//! * [`dane`] — InexactDANE (Reddi et al.) with an SVRG subproblem solver,
//!   and AIDE, its catalyst-accelerated variant.
//! * [`disco`] — DiSCO (Zhang & Lin): distributed inexact damped Newton whose
//!   every CG iteration is a communication round.
//! * [`sgd`] — distributed synchronous minibatch SGD (the paper's Figure 4
//!   first-order comparator), one allreduce per minibatch.
//! * [`newton_exact`] — single-node Newton-CG run to high precision; used to
//!   obtain the reference optimum `x*` for the relative-objective metric θ
//!   (paper Figure 3).
//!
//! All solvers use the *sum* form of the objective
//! `F(w) = Σ_i loss_i(w) + λ‖w‖²/2`, sharding the regulariser as `λ/N` per
//! worker so that local values/gradients sum exactly to the global ones.

pub mod common;
pub mod dane;
pub mod disco;
pub mod giant;
pub mod newton_exact;
pub mod sgd;

pub use common::DistributedRun;
pub use dane::{AideConfig, DaneConfig, InexactDane};
pub use disco::{Disco, DiscoConfig};
pub use giant::{Giant, GiantConfig};
pub use newton_exact::{reference_optimum, ReferenceOptimum};
pub use sgd::{SyncSgd, SyncSgdConfig};

#[cfg(test)]
#[allow(deprecated)] // the deprecated `run_cluster` wrapper stays under test
mod tests {
    use super::*;
    use nadmm_cluster::{Cluster, NetworkModel};
    use nadmm_data::{partition_strong, SyntheticConfig};

    #[test]
    fn giant_smoke_test() {
        let (train, _) = SyntheticConfig::mnist_like()
            .with_train_size(60)
            .with_test_size(10)
            .with_num_features(6)
            .with_num_classes(3)
            .generate(1);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = GiantConfig {
            max_iters: 3,
            lambda: 1e-3,
            ..Default::default()
        };
        let run = Giant::new(cfg).run_cluster(&cluster, &shards, None);
        assert!(run.history.final_objective().unwrap() < run.history.records[0].objective);
    }
}
