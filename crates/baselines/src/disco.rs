//! DiSCO: distributed inexact damped Newton (Zhang & Lin 2015).
//!
//! Every outer iteration solves the Newton system `H(w) v = ∇F(w)` with a
//! *distributed* CG in which each Hessian-vector product requires an
//! allreduce across workers — so one DiSCO iteration needs as many
//! communication rounds as CG iterations (plus one for the gradient). This
//! is the structural contrast with Newton-ADMM (one round) and GIANT (three
//! rounds) the paper's related-work discussion draws.

use crate::common::{global_gradient_into, local_objective_on, record_iteration, DistributedRun, EngineSync};
use nadmm_cluster::{Cluster, Communicator};
use nadmm_data::Dataset;
use nadmm_device::{Device, DeviceSpec, Workspace};
use nadmm_linalg::vector;
use nadmm_metrics::RunHistory;
use nadmm_objective::Objective;
use nadmm_solver::validate::{require_non_negative, require_nonzero, ConfigError};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// DiSCO configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiscoConfig {
    /// Number of outer (damped Newton) iterations.
    pub max_iters: usize,
    /// Global L2 regularization weight λ.
    pub lambda: f64,
    /// Maximum distributed-CG iterations per outer iteration.
    pub cg_iters: usize,
    /// Relative residual tolerance of the distributed CG.
    pub cg_tolerance: f64,
    /// Hardware model for local compute time.
    pub device: DeviceSpec,
}

impl Default for DiscoConfig {
    fn default() -> Self {
        Self {
            max_iters: 50,
            lambda: 1e-5,
            cg_iters: 10,
            cg_tolerance: 1e-4,
            device: DeviceSpec::tesla_p100(),
        }
    }
}

impl DiscoConfig {
    /// Rejects zero iteration budgets and negative tolerances.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_nonzero("DiscoConfig", "max_iters", self.max_iters)?;
        require_non_negative("DiscoConfig", "lambda", self.lambda)?;
        require_nonzero("DiscoConfig", "cg_iters", self.cg_iters)?;
        require_non_negative("DiscoConfig", "cg_tolerance", self.cg_tolerance)
    }
}

/// The DiSCO solver.
#[derive(Debug, Clone, Default)]
pub struct Disco {
    config: DiscoConfig,
}

impl Disco {
    /// Creates a solver with the given configuration.
    pub fn new(config: DiscoConfig) -> Self {
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &DiscoConfig {
        &self.config
    }

    /// Runs DiSCO inside one rank of a communicator.
    pub fn run_distributed(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> DistributedRun {
        let cfg = &self.config;
        let n_workers = comm.size();
        let device = Device::new(cfg.device);
        let local = local_objective_on(shard, cfg.lambda, n_workers, &device);
        let mut engine = EngineSync::new(&device);
        let mut ws = Workspace::new();
        let dim = local.dim();
        let mut w = vec![0.0; dim];
        let mut g = vec![0.0; dim];
        let mut v = vec![0.0; dim];
        let mut r = vec![0.0; dim];
        let mut p = vec![0.0; dim];
        let mut hv_final = vec![0.0; dim];
        let wall_start = Instant::now();
        let mut history = RunHistory::new("disco", shard.name(), n_workers);
        record_iteration(comm, &local, &mut engine, test, &w, 0, wall_start, &mut history);

        for k in 1..=cfg.max_iters {
            // Round 1: global gradient (in-place allreduce).
            global_gradient_into(comm, &local, &mut engine, &mut ws, &w, &mut g);
            let g_norm = vector::norm2(&g);
            if g_norm == 0.0 {
                break;
            }

            // Distributed CG on H v = g: every H·p is a local HVP followed by
            // an *in-place* allreduce (one communication round per CG
            // iteration — DiSCO's structural cost — but zero allocations per
            // round). The local HVPs launch through the device engine with
            // pooled scratch.
            let hvp_state = local.prepare_hvp(&w, &mut ws);
            let mut hp = ws.acquire(dim);
            vector::fill(&mut v, 0.0);
            r.copy_from_slice(&g);
            p.copy_from_slice(&g);
            vector::fill(&mut hv_final, 0.0);
            let mut rs_old = vector::norm2_sq(&r);
            let target = cfg.cg_tolerance * g_norm;
            for _ in 0..cfg.cg_iters {
                if rs_old.sqrt() <= target {
                    break;
                }
                local.hvp_prepared_into(&hvp_state, &p, &mut hp, &mut ws);
                engine.sync(comm, &device);
                comm.allreduce_sum_into(&mut hp);
                let p_hp = vector::dot(&p, &hp);
                if p_hp <= 0.0 || !p_hp.is_finite() {
                    break;
                }
                let alpha = rs_old / p_hp;
                vector::axpy(alpha, &p, &mut v);
                vector::axpy(-alpha, &hp, &mut r);
                hv_final.copy_from_slice(&hp);
                let rs_new = vector::norm2_sq(&r);
                let beta = rs_new / rs_old;
                vector::axpby(1.0, &r, beta, &mut p);
                rs_old = rs_new;
            }
            ws.release(hp);
            local.release_hvp(hvp_state, &mut ws);

            // Damped Newton step: δ = √(vᵀHv), w ← w − v / (1 + δ).
            let vhv = vector::dot(&v, &hv_final).max(0.0);
            let delta = vhv.sqrt();
            let step = 1.0 / (1.0 + delta);
            vector::axpy(-step, &v, &mut w);

            record_iteration(comm, &local, &mut engine, test, &w, k, wall_start, &mut history);
        }

        DistributedRun {
            w,
            history,
            comm_stats: comm.stats(),
            workspace: ws.stats(),
        }
    }

    /// Convenience wrapper spawning one rank per shard.
    ///
    /// Superseded by the experiment layer (`nadmm-experiment`): build an
    /// `Experiment` with `SolverSpec::Disco` instead.
    #[deprecated(since = "0.1.0", note = "use the `nadmm-experiment` builder (`SolverSpec::Disco`) instead")]
    pub fn run_cluster(&self, cluster: &Cluster, shards: &[Dataset], test: Option<&Dataset>) -> DistributedRun {
        let mut outputs = cluster.run_sharded(shards, |comm, shard| self.run_distributed(comm, shard, test));
        outputs.swap_remove(0)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated `run_cluster` wrapper stays under test
mod tests {
    use super::*;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::{partition_strong, SyntheticConfig};

    fn dataset(seed: u64) -> Dataset {
        SyntheticConfig::mnist_like()
            .with_train_size(90)
            .with_test_size(20)
            .with_num_features(6)
            .with_num_classes(3)
            .generate(seed)
            .0
    }

    #[test]
    fn disco_reduces_the_objective() {
        let train = dataset(1);
        let (shards, _) = partition_strong(&train, 3);
        let cluster = Cluster::new(3, NetworkModel::ideal());
        let cfg = DiscoConfig {
            max_iters: 15,
            lambda: 1e-3,
            ..Default::default()
        };
        let run = Disco::new(cfg).run_cluster(&cluster, &shards, None);
        let first = run.history.records[0].objective;
        let last = run.history.final_objective().unwrap();
        assert!(
            last < 0.8 * first,
            "DiSCO should clearly reduce the objective: {first} -> {last}"
        );
    }

    #[test]
    fn disco_needs_a_round_per_cg_iteration() {
        let train = dataset(2);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let iters = 3;
        let cg_iters = 5;
        let cfg = DiscoConfig {
            max_iters: iters,
            cg_iters,
            lambda: 1e-3,
            cg_tolerance: 1e-12,
            ..Default::default()
        };
        let run = Disco::new(cfg).run_cluster(&cluster, &shards, None);
        // Per iteration: 1 gradient allreduce + up to cg_iters HVP allreduces
        // + 1 instrumentation allreduce; plus 1 for iteration 0. With a tiny
        // tolerance CG runs its full budget, so the count is exact.
        let expected = (iters * (1 + cg_iters + 1) + 1) as u64;
        assert_eq!(run.comm_stats.collectives, expected);
    }

    #[test]
    fn disco_communicates_more_rounds_than_newton_admm_would() {
        // Structural check used by the docs: with 10 CG iterations DiSCO does
        // ~12 rounds per iteration vs Newton-ADMM's 2 (reduce + broadcast).
        let train = dataset(3);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = DiscoConfig {
            max_iters: 4,
            cg_iters: 10,
            cg_tolerance: 1e-12,
            lambda: 1e-3,
            ..Default::default()
        };
        let run = Disco::new(cfg).run_cluster(&cluster, &shards, None);
        let rounds_per_iter = (run.comm_stats.collectives - 1) as f64 / 4.0;
        assert!(
            rounds_per_iter > 4.0,
            "DiSCO rounds/iter {rounds_per_iter} should exceed Newton-ADMM's ~4"
        );
    }
}
