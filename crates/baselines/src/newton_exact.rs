//! Single-node Newton run to high precision.
//!
//! The paper's Figure 3 metric needs the "optimal" solution vector `x*`
//! ("obtained by running Newton's method on a single node to high
//! precision"); this module provides exactly that, plus a convenience record
//! of the optimal objective value used by the relative-objective (θ)
//! computations.

use nadmm_data::Dataset;
use nadmm_objective::{Objective, SoftmaxCrossEntropy};
use nadmm_solver::{CgConfig, LineSearchConfig, NewtonCg, NewtonConfig};

/// The reference optimum of the regularised softmax problem on a dataset.
#[derive(Debug, Clone)]
pub struct ReferenceOptimum {
    /// The high-precision solution vector `x*`.
    pub x_star: Vec<f64>,
    /// The optimal objective value `F(x*)`.
    pub f_star: f64,
    /// Gradient norm at `x*` (a measure of how exact the reference is).
    pub grad_norm: f64,
    /// Newton iterations used.
    pub iterations: usize,
}

/// Runs single-node Newton-CG to high precision on the full dataset and
/// returns the reference optimum used by the θ metric.
pub fn reference_optimum(data: &Dataset, lambda: f64) -> ReferenceOptimum {
    let obj = SoftmaxCrossEntropy::new(data, lambda);
    let config = NewtonConfig {
        max_iters: 200,
        grad_tol: 1e-10,
        cg: CgConfig {
            max_iters: 250,
            tolerance: 1e-12,
        },
        line_search: LineSearchConfig::default(),
    };
    let result = NewtonCg::new(config).minimize(&obj, &vec![0.0; obj.dim()]);
    ReferenceOptimum {
        x_star: result.x,
        f_star: result.value,
        grad_norm: result.grad_norm,
        iterations: result.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_data::SyntheticConfig;
    use nadmm_linalg::vector;

    #[test]
    fn reference_optimum_has_tiny_gradient() {
        let (train, _) = SyntheticConfig::mnist_like()
            .with_train_size(80)
            .with_test_size(10)
            .with_num_features(6)
            .with_num_classes(3)
            .generate(1);
        let opt = reference_optimum(&train, 1e-3);
        assert!(opt.grad_norm < 1e-6, "reference gradient norm {} too large", opt.grad_norm);
        assert!(opt.f_star > 0.0);
        assert!(opt.iterations > 0);
        // Perturbing x* must not decrease the objective.
        let obj = SoftmaxCrossEntropy::new(&train, 1e-3);
        let mut rng = nadmm_linalg::gen::seeded_rng(2);
        for _ in 0..3 {
            let mut xp = opt.x_star.clone();
            let d = nadmm_linalg::gen::gaussian_vector_with(xp.len(), 0.0, 1e-3, &mut rng);
            vector::add_assign(&mut xp, &d);
            assert!(obj.value(&xp) >= opt.f_star - 1e-9);
        }
    }

    #[test]
    fn stronger_regularization_gives_larger_optimal_value() {
        let (train, _) = SyntheticConfig::higgs_like()
            .with_train_size(60)
            .with_test_size(10)
            .with_num_features(5)
            .generate(3);
        let weak = reference_optimum(&train, 1e-5);
        let strong = reference_optimum(&train, 1e-1);
        assert!(strong.f_star >= weak.f_star);
    }
}
