//! GIANT: Globally Improved Approximate Newton (Wang et al. 2017).
//!
//! Per outer iteration GIANT needs **three** communication rounds, which is
//! the key structural difference from Newton-ADMM's single round:
//!
//! 1. allreduce of the local gradients to form the global gradient `g`;
//! 2. every worker solves its local Hessian system `(N·H_i) p_i = g` with CG
//!    and the local Newton directions are averaged by a second allreduce;
//! 3. a *distributed* line search: every worker evaluates its local objective
//!    at the fixed step-size set `S = {2⁰, 2⁻¹, …, 2⁻ᵏ}` and a third
//!    allreduce combines them so the master can pick the best global step
//!    (each worker must evaluate the whole set — the redundant work the paper
//!    contrasts with Newton-ADMM's locally-terminated backtracking).

use crate::common::{global_gradient_into, local_objective_on, record_iteration, DistributedRun, EngineSync};
use nadmm_cluster::{Cluster, Communicator};
use nadmm_data::Dataset;
use nadmm_device::{Device, DeviceSpec, Workspace};
use nadmm_linalg::vector;
use nadmm_metrics::RunHistory;
use nadmm_objective::Objective;
use nadmm_solver::validate::{require_non_negative, require_nonzero, require_open_unit, ConfigError};
use nadmm_solver::{conjugate_gradient_into, CgConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// GIANT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GiantConfig {
    /// Number of outer iterations (epochs).
    pub max_iters: usize,
    /// Global L2 regularization weight λ.
    pub lambda: f64,
    /// CG budget/tolerance for the local Hessian solves (the paper uses the
    /// same settings as Newton-ADMM for a fair comparison: 10 iterations,
    /// tolerance 1e-4).
    pub cg: CgConfig,
    /// Number of candidate step sizes in the fixed set `{2⁰ … 2^{-(k-1)}}`
    /// (the paper uses 10, matching Newton-ADMM's max line-search iterations).
    pub line_search_steps: usize,
    /// Armijo sufficient-decrease constant used to pick among the candidates.
    pub armijo_beta: f64,
    /// Hardware model for local compute time.
    pub device: DeviceSpec,
    /// Stop when the global gradient norm drops below this (0 disables).
    pub grad_tol: f64,
}

impl Default for GiantConfig {
    fn default() -> Self {
        Self {
            max_iters: 100,
            lambda: 1e-5,
            cg: CgConfig {
                max_iters: 10,
                tolerance: 1e-4,
            },
            line_search_steps: 10,
            armijo_beta: 1e-4,
            device: DeviceSpec::tesla_p100(),
            grad_tol: 0.0,
        }
    }
}

impl GiantConfig {
    /// Rejects zero iteration budgets and out-of-range constants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_nonzero("GiantConfig", "max_iters", self.max_iters)?;
        require_non_negative("GiantConfig", "lambda", self.lambda)?;
        require_nonzero("GiantConfig", "line_search_steps", self.line_search_steps)?;
        require_open_unit("GiantConfig", "armijo_beta", self.armijo_beta)?;
        require_non_negative("GiantConfig", "grad_tol", self.grad_tol)?;
        self.cg.validate()
    }
}

/// The GIANT solver.
#[derive(Debug, Clone, Default)]
pub struct Giant {
    config: GiantConfig,
}

impl Giant {
    /// Creates a solver with the given configuration.
    pub fn new(config: GiantConfig) -> Self {
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &GiantConfig {
        &self.config
    }

    /// Runs GIANT inside one rank of a communicator; every rank must call
    /// this with its shard.
    pub fn run_distributed(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> DistributedRun {
        let cfg = &self.config;
        let n_workers = comm.size();
        let device = Device::new(cfg.device);
        let local = local_objective_on(shard, cfg.lambda, n_workers, &device);
        let mut engine = EngineSync::new(&device);
        let mut ws = Workspace::new();
        let dim = local.dim();
        let mut w = vec![0.0; dim];
        let mut p_local = vec![0.0; dim];
        let mut g = vec![0.0; dim];
        let steps: Vec<f64> = (0..cfg.line_search_steps).map(|i| 0.5_f64.powi(i as i32)).collect();
        let mut step_values = vec![0.0; steps.len()];
        let wall_start = Instant::now();
        let mut history = RunHistory::new("giant", shard.name(), n_workers);
        record_iteration(comm, &local, &mut engine, test, &w, 0, wall_start, &mut history);

        for k in 1..=cfg.max_iters {
            // Round 1: global gradient (in-place allreduce).
            global_gradient_into(comm, &local, &mut engine, &mut ws, &w, &mut g);
            if cfg.grad_tol > 0.0 && vector::norm2(&g) < cfg.grad_tol {
                break;
            }

            // Local Hessian solve: (N·H_i) p_i = g  (H_i is the local shard
            // Hessian; N·H_i approximates the global Hessian under an i.i.d.
            // partition). Every HVP launches through the device engine with
            // pooled scratch, so the CG loop is allocation-free once warm.
            let hvp_state = local.prepare_hvp(&w, &mut ws);
            let scale = n_workers as f64;
            conjugate_gradient_into(
                |v, out, ws| {
                    local.hvp_prepared_into(&hvp_state, v, out, ws);
                    vector::scale(scale, out);
                },
                &g,
                &mut p_local,
                &cfg.cg,
                &mut ws,
            );
            local.release_hvp(hvp_state, &mut ws);
            engine.sync(comm, &device);

            // Round 2: average the local Newton directions, in place (CG
            // rewrites `p_local` from scratch next iteration, so the sum can
            // land where the local direction was).
            comm.allreduce_sum_into(&mut p_local);
            for v in p_local.iter_mut() {
                *v /= n_workers as f64;
            }
            let p = &p_local;

            // Round 3: distributed line search over the fixed step-size set.
            // Every worker evaluates *all* candidate steps (paper §3).
            let mut trial = ws.acquire(dim);
            for (slot, &alpha) in step_values.iter_mut().zip(&steps) {
                trial.copy_from_slice(&w);
                vector::axpy(-alpha, p, &mut trial);
                *slot = local.value_ws(&trial, &mut ws);
            }
            ws.release(trial);
            engine.sync(comm, &device);
            comm.allreduce_sum_into(&mut step_values);

            // Pick the largest step satisfying Armijo on the global
            // objective; fall back to the best value if none does.
            let f0 = history.records.last().map(|r| r.objective).unwrap_or_else(|| step_values[0]);
            let slope = -vector::dot(p, &g); // direction is −p
            let mut chosen = None;
            for (i, &alpha) in steps.iter().enumerate() {
                if step_values[i] <= f0 + cfg.armijo_beta * alpha * slope {
                    chosen = Some(i);
                    break;
                }
            }
            let best = chosen.unwrap_or_else(|| {
                step_values
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("line-search step objective is NaN"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            });
            vector::axpy(-steps[best], p, &mut w);

            record_iteration(comm, &local, &mut engine, test, &w, k, wall_start, &mut history);
        }

        DistributedRun {
            w,
            history,
            comm_stats: comm.stats(),
            workspace: ws.stats(),
        }
    }

    /// Convenience wrapper spawning one rank per shard and returning the
    /// master's output.
    ///
    /// Superseded by the experiment layer (`nadmm-experiment`): build an
    /// `Experiment` with `SolverSpec::Giant` instead.
    #[deprecated(since = "0.1.0", note = "use the `nadmm-experiment` builder (`SolverSpec::Giant`) instead")]
    pub fn run_cluster(&self, cluster: &Cluster, shards: &[Dataset], test: Option<&Dataset>) -> DistributedRun {
        let mut outputs = cluster.run_sharded(shards, |comm, shard| self.run_distributed(comm, shard, test));
        outputs.swap_remove(0)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated `run_cluster` wrapper stays under test
mod tests {
    use super::*;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::{partition_strong, SyntheticConfig};
    use nadmm_objective::SoftmaxCrossEntropy;
    use nadmm_solver::{NewtonCg, NewtonConfig};

    fn dataset(seed: u64) -> (Dataset, Dataset) {
        SyntheticConfig::mnist_like()
            .with_train_size(120)
            .with_test_size(30)
            .with_num_features(8)
            .with_num_classes(4)
            .generate(seed)
    }

    #[test]
    fn giant_converges_towards_the_newton_optimum() {
        let (train, _) = dataset(1);
        let lambda = 1e-2;
        let global = SoftmaxCrossEntropy::new(&train, lambda);
        let newton = NewtonCg::new(NewtonConfig {
            max_iters: 50,
            cg: CgConfig {
                max_iters: 60,
                tolerance: 1e-10,
            },
            ..Default::default()
        })
        .minimize(&global, &vec![0.0; global.dim()]);
        let (shards, _) = partition_strong(&train, 4);
        let cluster = Cluster::new(4, NetworkModel::infiniband_100g());
        let cfg = GiantConfig {
            max_iters: 30,
            lambda,
            ..Default::default()
        };
        let run = Giant::new(cfg).run_cluster(&cluster, &shards, None);
        let final_value = run.history.final_objective().unwrap();
        assert!(
            (final_value - newton.value) / newton.value.abs() < 0.05,
            "GIANT final value {final_value} too far from Newton optimum {}",
            newton.value
        );
    }

    #[test]
    fn giant_uses_three_rounds_per_iteration_plus_instrumentation() {
        let (train, _) = dataset(2);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let iters = 4;
        let cfg = GiantConfig {
            max_iters: iters,
            lambda: 1e-3,
            ..Default::default()
        };
        let run = Giant::new(cfg).run_cluster(&cluster, &shards, None);
        // Per iteration: 3 algorithmic collectives + 1 instrumentation
        // allreduce; plus 1 instrumentation collective for iteration 0.
        let expected = 4 * iters as u64 + 1;
        assert_eq!(run.comm_stats.collectives, expected);
    }

    #[test]
    fn giant_improves_test_accuracy() {
        let (train, test) = dataset(3);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::infiniband_100g());
        let cfg = GiantConfig {
            max_iters: 15,
            lambda: 1e-3,
            ..Default::default()
        };
        let run = Giant::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let first_acc = run.history.records[0].test_accuracy.unwrap();
        let last_acc = run.history.final_accuracy().unwrap();
        assert!(last_acc > first_acc, "accuracy should improve: {first_acc} -> {last_acc}");
    }

    #[test]
    fn gradient_tolerance_stops_early() {
        let (train, _) = dataset(4);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = GiantConfig {
            max_iters: 100,
            lambda: 1e-2,
            grad_tol: 1e3,
            ..Default::default()
        };
        let run = Giant::new(cfg).run_cluster(&cluster, &shards, None);
        assert!(run.history.len() <= 2, "a huge grad_tol must stop the run immediately");
    }
}
