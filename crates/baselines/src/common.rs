//! Helpers shared by every distributed baseline.

use nadmm_cluster::{CommStats, Communicator};
use nadmm_data::Dataset;
use nadmm_device::DeviceSpec;
use nadmm_linalg::vector;
use nadmm_metrics::{IterationRecord, RunHistory};
use nadmm_objective::{Objective, OpCost, SoftmaxCrossEntropy};
use std::time::Instant;

/// Output common to every distributed baseline run.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// Final global iterate.
    pub w: Vec<f64>,
    /// Per-iteration history.
    pub history: RunHistory,
    /// Communication counters of the rank that produced this output.
    pub comm_stats: CommStats,
}

/// Builds the local objective for a shard in the *sum* formulation: the shard
/// loss plus `λ/N` of the regulariser, so that values and gradients summed
/// over workers equal the global `F(w) = Σ loss_i + λ‖w‖²/2`.
pub fn local_objective(shard: &Dataset, lambda: f64, num_workers: usize) -> SoftmaxCrossEntropy {
    SoftmaxCrossEntropy::new(shard, lambda / num_workers.max(1) as f64)
}

/// Charges `cost` of local compute to this rank, converted to seconds by the
/// device model.
pub fn charge_compute(comm: &mut dyn Communicator, device: &DeviceSpec, cost: OpCost) {
    comm.advance_compute(device.kernel_time(cost.flops, cost.bytes));
}

/// Records one iteration of a distributed run: global objective (scalar
/// allreduce of the local values), optional test accuracy evaluated at the
/// root, simulated time and communication volume.
pub fn record_iteration(
    comm: &mut dyn Communicator,
    local: &SoftmaxCrossEntropy,
    test: Option<&Dataset>,
    w: &[f64],
    iteration: usize,
    wall_start: Instant,
    history: &mut RunHistory,
) {
    let objective = comm.allreduce_scalar_sum(local.value(w));
    let mut record = IterationRecord::new(iteration, comm.elapsed(), wall_start.elapsed().as_secs_f64(), objective)
        .with_comm_bytes(comm.stats().bytes_sent);
    if let Some(test_set) = test {
        let acc = if comm.is_root() { local.accuracy(test_set, w) } else { 0.0 };
        record = record.with_accuracy(comm.allreduce_scalar_max(acc));
    }
    history.push(record);
}

/// Global gradient via an allreduce of local gradients, also charging the
/// compute cost of the local gradient evaluation.
pub fn global_gradient(
    comm: &mut dyn Communicator,
    local: &SoftmaxCrossEntropy,
    device: &DeviceSpec,
    w: &[f64],
) -> Vec<f64> {
    let g_local = local.gradient(w);
    charge_compute(comm, device, local.cost_value_grad());
    comm.allreduce_sum(&g_local)
}

/// Global objective value via a scalar allreduce (used inside distributed
/// line searches), charging the local evaluation cost.
pub fn global_value(comm: &mut dyn Communicator, local: &SoftmaxCrossEntropy, device: &DeviceSpec, w: &[f64]) -> f64 {
    let v = local.value(w);
    charge_compute(comm, device, local.cost_value_grad());
    comm.allreduce_scalar_sum(v)
}

/// `‖a − b‖₂ / max(‖b‖₂, 1)` — relative distance used by the agreement tests.
pub fn relative_distance(a: &[f64], b: &[f64]) -> f64 {
    vector::distance(a, b) / vector::norm2(b).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_cluster::{Cluster, NetworkModel};
    use nadmm_data::{partition_strong, SyntheticConfig};

    fn dataset() -> Dataset {
        SyntheticConfig::mnist_like()
            .with_train_size(60)
            .with_test_size(10)
            .with_num_features(5)
            .with_num_classes(3)
            .generate(3)
            .0
    }

    #[test]
    fn local_objectives_sum_to_the_global_objective() {
        let data = dataset();
        let lambda = 0.1;
        let global = SoftmaxCrossEntropy::new(&data, lambda);
        let (shards, _) = partition_strong(&data, 3);
        let locals: Vec<_> = shards.iter().map(|s| local_objective(s, lambda, 3)).collect();
        let mut rng = nadmm_linalg::gen::seeded_rng(1);
        let w = nadmm_linalg::gen::gaussian_vector_with(global.dim(), 0.0, 0.2, &mut rng);
        let sum_vals: f64 = locals.iter().map(|l| l.value(&w)).sum();
        assert!((sum_vals - global.value(&w)).abs() < 1e-8 * (1.0 + global.value(&w).abs()));
        let mut sum_grad = vec![0.0; global.dim()];
        for l in &locals {
            vector::add_assign(&mut sum_grad, &l.gradient(&w));
        }
        let g = global.gradient(&w);
        for (a, b) in sum_grad.iter().zip(&g) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn global_gradient_and_value_match_direct_computation() {
        let data = dataset();
        let lambda = 0.01;
        let global = SoftmaxCrossEntropy::new(&data, lambda);
        let (shards, _) = partition_strong(&data, 2);
        let w = vec![0.05; global.dim()];
        let expected_val = global.value(&w);
        let expected_grad = global.gradient(&w);
        let results = Cluster::new(2, NetworkModel::ideal()).run(|comm| {
            let local = local_objective(&shards[comm.rank()], lambda, 2);
            let device = DeviceSpec::tesla_p100();
            let g = global_gradient(comm, &local, &device, &w);
            let v = global_value(comm, &local, &device, &w);
            (g, v, comm.elapsed())
        });
        for (g, v, elapsed) in results {
            assert!((v - expected_val).abs() < 1e-8 * (1.0 + expected_val.abs()));
            for (a, b) in g.iter().zip(&expected_grad) {
                assert!((a - b).abs() < 1e-8);
            }
            assert!(elapsed > 0.0, "compute time must be charged");
        }
    }

    #[test]
    fn record_iteration_captures_objective_and_accuracy() {
        let data = dataset();
        let (test, _) = SyntheticConfig::mnist_like()
            .with_train_size(20)
            .with_test_size(5)
            .with_num_features(5)
            .with_num_classes(3)
            .generate(4);
        let (shards, _) = partition_strong(&data, 2);
        let w = vec![0.0; 2 * 5];
        let histories = Cluster::new(2, NetworkModel::ideal()).run(|comm| {
            let local = local_objective(&shards[comm.rank()], 0.1, 2);
            let mut h = RunHistory::new("test", "d", 2);
            record_iteration(comm, &local, Some(&test), &w, 0, Instant::now(), &mut h);
            h
        });
        for h in histories {
            assert_eq!(h.len(), 1);
            assert!(h.records[0].objective > 0.0);
            assert!(h.records[0].test_accuracy.is_some());
        }
    }

    #[test]
    fn relative_distance_basics() {
        assert_eq!(relative_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!(relative_distance(&[1.0, 0.0], &[0.0, 0.0]) > 0.0);
    }
}
