//! Helpers shared by every distributed baseline.

use nadmm_cluster::{CommStats, Communicator};
use nadmm_data::Dataset;
use nadmm_device::{Device, DeviceSpec, Workspace, WorkspaceStats};
use nadmm_linalg::vector;
use nadmm_metrics::{IterationRecord, RunHistory};
use nadmm_objective::{Objective, OpCost, SoftmaxCrossEntropy};
use std::time::Instant;

/// Output common to every distributed baseline run.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// Final global iterate.
    pub w: Vec<f64>,
    /// Per-iteration history.
    pub history: RunHistory,
    /// Communication counters of the rank that produced this output.
    pub comm_stats: CommStats,
    /// Device-workspace pool counters of the rank that produced this output.
    pub workspace: WorkspaceStats,
}

/// Builds the local objective for a shard in the *sum* formulation: the shard
/// loss plus `λ/N` of the regulariser, so that values and gradients summed
/// over workers equal the global `F(w) = Σ loss_i + λ‖w‖²/2`.
pub fn local_objective(shard: &Dataset, lambda: f64, num_workers: usize) -> SoftmaxCrossEntropy {
    SoftmaxCrossEntropy::new(shard, lambda / num_workers.max(1) as f64)
}

/// [`local_objective`] bound to an execution engine, so every kernel the
/// objective launches charges that device's simulated clock.
pub fn local_objective_on(shard: &Dataset, lambda: f64, num_workers: usize, device: &Device) -> SoftmaxCrossEntropy {
    local_objective(shard, lambda, num_workers).with_device(device.clone())
}

/// Charges `cost` of local compute to this rank, converted to seconds by the
/// device model. Legacy estimate-based charging — the solver hot paths now
/// charge per actual kernel launch via [`EngineSync`] instead.
pub fn charge_compute(comm: &mut dyn Communicator, device: &DeviceSpec, cost: OpCost) {
    comm.advance_compute(device.kernel_time(cost.flops, cost.bytes));
}

/// Bridges a rank's [`Device`] clock into its communicator clock.
///
/// The device accumulates simulated seconds as the objectives launch kernels;
/// [`EngineSync::sync`] advances the communicator by the time accrued since
/// the previous sync (so compute is charged from *actual* kernel launches,
/// not hand-written estimates), while [`EngineSync::skip`] discards accrued
/// time — used after instrumentation-only evaluations, which the experiment
/// protocol does not bill.
#[derive(Debug, Default)]
pub struct EngineSync {
    last: f64,
}

impl EngineSync {
    /// Starts tracking from the device's current clock.
    pub fn new(device: &Device) -> Self {
        Self { last: device.elapsed() }
    }

    /// Advances `comm`'s simulated clock by the device time accrued since the
    /// last sync/skip.
    pub fn sync(&mut self, comm: &mut dyn Communicator, device: &Device) {
        let now = device.elapsed();
        if now > self.last {
            comm.advance_compute(now - self.last);
        }
        self.last = now;
    }

    /// Discards device time accrued since the last sync/skip (instrumentation
    /// is not billed as solver compute).
    pub fn skip(&mut self, device: &Device) {
        self.last = device.elapsed();
    }
}

/// Records one iteration of a distributed run: global objective (scalar
/// allreduce of the local values), optional test accuracy evaluated at the
/// root, simulated time and communication volume. The evaluation is
/// instrumentation: device time it accrues is discarded via `engine`.
#[allow(clippy::too_many_arguments)]
pub fn record_iteration(
    comm: &mut dyn Communicator,
    local: &SoftmaxCrossEntropy,
    engine: &mut EngineSync,
    test: Option<&Dataset>,
    w: &[f64],
    iteration: usize,
    wall_start: Instant,
    history: &mut RunHistory,
) {
    let local_value = local.value(w);
    if let Some(device) = local.device() {
        engine.skip(device);
    }
    let objective = comm.allreduce_scalar_sum(local_value);
    let mut record = IterationRecord::new(iteration, comm.elapsed(), wall_start.elapsed().as_secs_f64(), objective)
        .with_comm_bytes(comm.stats().bytes_sent);
    if let Some(test_set) = test {
        let acc = if comm.is_root() { local.accuracy(test_set, w) } else { 0.0 };
        record = record.with_accuracy(comm.allreduce_scalar_max(acc));
    }
    history.push(record);
}

/// Global gradient via an *in-place* allreduce of local gradients: the local
/// gradient is evaluated into `out` and summed across ranks in place — no
/// heap allocation once the caller's buffers are warm. The local evaluation
/// launches through the objective's device; `engine` bills the accrued
/// simulated time to this rank.
pub fn global_gradient_into(
    comm: &mut dyn Communicator,
    local: &SoftmaxCrossEntropy,
    engine: &mut EngineSync,
    ws: &mut Workspace,
    w: &[f64],
    out: &mut [f64],
) {
    local.gradient_into(w, out, ws);
    if let Some(device) = local.device() {
        engine.sync(comm, device);
    }
    comm.allreduce_sum_into(out);
}

/// Allocating convenience wrapper around [`global_gradient_into`].
pub fn global_gradient(
    comm: &mut dyn Communicator,
    local: &SoftmaxCrossEntropy,
    engine: &mut EngineSync,
    ws: &mut Workspace,
    w: &[f64],
) -> Vec<f64> {
    let mut g = vec![0.0; local.dim()];
    global_gradient_into(comm, local, engine, ws, w, &mut g);
    g
}

/// Global objective value via a scalar allreduce (used inside distributed
/// line searches), billing the local evaluation through `engine`.
pub fn global_value(
    comm: &mut dyn Communicator,
    local: &SoftmaxCrossEntropy,
    engine: &mut EngineSync,
    ws: &mut Workspace,
    w: &[f64],
) -> f64 {
    let v = local.value_ws(w, ws);
    if let Some(device) = local.device() {
        engine.sync(comm, device);
    }
    comm.allreduce_scalar_sum(v)
}

/// `‖a − b‖₂ / max(‖b‖₂, 1)` — relative distance used by the agreement tests.
pub fn relative_distance(a: &[f64], b: &[f64]) -> f64 {
    vector::distance(a, b) / vector::norm2(b).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_cluster::{Cluster, NetworkModel};
    use nadmm_data::{partition_strong, SyntheticConfig};

    fn dataset() -> Dataset {
        SyntheticConfig::mnist_like()
            .with_train_size(60)
            .with_test_size(10)
            .with_num_features(5)
            .with_num_classes(3)
            .generate(3)
            .0
    }

    #[test]
    fn local_objectives_sum_to_the_global_objective() {
        let data = dataset();
        let lambda = 0.1;
        let global = SoftmaxCrossEntropy::new(&data, lambda);
        let (shards, _) = partition_strong(&data, 3);
        let locals: Vec<_> = shards.iter().map(|s| local_objective(s, lambda, 3)).collect();
        let mut rng = nadmm_linalg::gen::seeded_rng(1);
        let w = nadmm_linalg::gen::gaussian_vector_with(global.dim(), 0.0, 0.2, &mut rng);
        let sum_vals: f64 = locals.iter().map(|l| l.value(&w)).sum();
        assert!((sum_vals - global.value(&w)).abs() < 1e-8 * (1.0 + global.value(&w).abs()));
        let mut sum_grad = vec![0.0; global.dim()];
        for l in &locals {
            vector::add_assign(&mut sum_grad, &l.gradient(&w));
        }
        let g = global.gradient(&w);
        for (a, b) in sum_grad.iter().zip(&g) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn global_gradient_and_value_match_direct_computation() {
        let data = dataset();
        let lambda = 0.01;
        let global = SoftmaxCrossEntropy::new(&data, lambda);
        let (shards, _) = partition_strong(&data, 2);
        let w = vec![0.05; global.dim()];
        let expected_val = global.value(&w);
        let expected_grad = global.gradient(&w);
        let results = Cluster::new(2, NetworkModel::ideal()).run(|comm| {
            let device = Device::new(DeviceSpec::tesla_p100());
            let local = local_objective_on(&shards[comm.rank()], lambda, 2, &device);
            let mut engine = EngineSync::new(&device);
            let mut ws = Workspace::new();
            let g = global_gradient(comm, &local, &mut engine, &mut ws, &w);
            let v = global_value(comm, &local, &mut engine, &mut ws, &w);
            (g, v, comm.elapsed())
        });
        for (g, v, elapsed) in results {
            assert!((v - expected_val).abs() < 1e-8 * (1.0 + expected_val.abs()));
            for (a, b) in g.iter().zip(&expected_grad) {
                assert!((a - b).abs() < 1e-8);
            }
            assert!(elapsed > 0.0, "compute time must be charged");
        }
    }

    #[test]
    fn record_iteration_captures_objective_and_accuracy() {
        let data = dataset();
        let (test, _) = SyntheticConfig::mnist_like()
            .with_train_size(20)
            .with_test_size(5)
            .with_num_features(5)
            .with_num_classes(3)
            .generate(4);
        let (shards, _) = partition_strong(&data, 2);
        let w = vec![0.0; 2 * 5];
        let histories = Cluster::new(2, NetworkModel::ideal()).run(|comm| {
            let device = Device::default();
            let local = local_objective_on(&shards[comm.rank()], 0.1, 2, &device);
            let mut engine = EngineSync::new(&device);
            let mut h = RunHistory::new("test", "d", 2);
            record_iteration(comm, &local, &mut engine, Some(&test), &w, 0, Instant::now(), &mut h);
            h
        });
        for h in histories {
            assert_eq!(h.len(), 1);
            assert!(h.records[0].objective > 0.0);
            assert!(h.records[0].test_accuracy.is_some());
        }
    }

    #[test]
    fn relative_distance_basics() {
        assert_eq!(relative_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!(relative_distance(&[1.0, 0.0], &[0.0, 0.0]) > 0.0);
    }
}
