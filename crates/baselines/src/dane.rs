//! InexactDANE and AIDE (Reddi et al. 2016).
//!
//! DANE solves, at every worker and every outer iteration, the *mirror*
//! subproblem
//!
//! ```text
//! w_i⁺ = argmin_w  φ_i(w) − (∇φ_i(w_t) − η ∇F(w_t))ᵀ w + μ/2 ‖w − w_t‖²
//! ```
//!
//! and averages the solutions. InexactDANE solves the subproblem only
//! approximately with SVRG, which is exactly why its epoch time is orders of
//! magnitude larger than Newton-ADMM's in the paper's Figure 1 — the SVRG
//! inner loop performs very many minibatch gradient evaluations per epoch.
//! AIDE wraps InexactDANE in catalyst-style acceleration: it repeatedly
//! solves a `τ`-regularised problem centred at an extrapolated point.

use crate::common::{global_gradient, local_objective_on, record_iteration, DistributedRun, EngineSync};
use nadmm_cluster::{Cluster, Communicator};
use nadmm_data::Dataset;
use nadmm_device::{Device, DeviceSpec};
use nadmm_linalg::{gen, vector};
use nadmm_metrics::RunHistory;
use nadmm_objective::{Objective, SoftmaxCrossEntropy};
use nadmm_solver::validate::{require_non_negative, require_nonzero, require_positive, require_unit_coefficient, ConfigError};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// InexactDANE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaneConfig {
    /// Number of outer iterations.
    pub max_iters: usize,
    /// Global L2 regularization weight λ.
    pub lambda: f64,
    /// DANE's gradient-mixing parameter η (the paper follows DANE's
    /// suggestion of 1.0).
    pub eta: f64,
    /// DANE's proximal weight μ (the paper uses 0.0).
    pub mu: f64,
    /// Number of SVRG inner iterations per subproblem (the paper uses 100).
    pub svrg_iters: usize,
    /// SVRG minibatch size.
    pub svrg_batch: usize,
    /// SVRG step size (the paper grid-searches 1e-4…1e4; this is the value
    /// used for the run).
    pub svrg_step: f64,
    /// RNG seed for the SVRG minibatch sampling.
    pub seed: u64,
    /// Hardware model for local compute time.
    pub device: DeviceSpec,
}

impl Default for DaneConfig {
    fn default() -> Self {
        Self {
            max_iters: 10,
            lambda: 1e-5,
            eta: 1.0,
            mu: 0.0,
            svrg_iters: 100,
            svrg_batch: 16,
            svrg_step: 1e-3,
            seed: 0,
            device: DeviceSpec::tesla_p100(),
        }
    }
}

impl DaneConfig {
    /// Rejects zero iteration budgets and invalid SVRG parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_nonzero("DaneConfig", "max_iters", self.max_iters)?;
        require_non_negative("DaneConfig", "lambda", self.lambda)?;
        require_positive("DaneConfig", "eta", self.eta)?;
        require_non_negative("DaneConfig", "mu", self.mu)?;
        require_nonzero("DaneConfig", "svrg_iters", self.svrg_iters)?;
        require_nonzero("DaneConfig", "svrg_batch", self.svrg_batch)?;
        require_positive("DaneConfig", "svrg_step", self.svrg_step)
    }
}

/// AIDE configuration: InexactDANE plus the catalyst parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AideConfig {
    /// The inner InexactDANE configuration.
    pub dane: DaneConfig,
    /// Catalyst regularisation weight τ (the paper grid-searches 1e-4…1e4).
    pub tau: f64,
    /// Extrapolation (momentum) coefficient ζ ∈ [0, 1).
    pub zeta: f64,
}

impl Default for AideConfig {
    fn default() -> Self {
        Self {
            dane: DaneConfig::default(),
            tau: 1.0,
            zeta: 0.5,
        }
    }
}

impl AideConfig {
    /// Rejects an invalid inner DANE config or catalyst constants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.dane.validate()?;
        require_non_negative("AideConfig", "tau", self.tau)?;
        require_unit_coefficient("AideConfig", "zeta", self.zeta)
    }
}

/// The InexactDANE / AIDE solver.
#[derive(Debug, Clone, Default)]
pub struct InexactDane {
    config: DaneConfig,
}

/// The DANE subproblem gradient at `w`:
/// `∇φ_i(w) − (∇φ_i(w_t) − η ∇F(w_t)) + μ(w − w_t) [+ τ(w − y)]`.
struct SubproblemGrad<'a> {
    local: &'a SoftmaxCrossEntropy,
    correction: Vec<f64>,
    anchor: Vec<f64>,
    mu: f64,
    tau: f64,
    catalyst_center: Option<Vec<f64>>,
}

impl SubproblemGrad<'_> {
    fn eval_with(&self, base_grad: &[f64], w: &[f64]) -> Vec<f64> {
        let mut g = base_grad.to_vec();
        vector::sub_assign(&mut g, &self.correction);
        if self.mu > 0.0 {
            for i in 0..g.len() {
                g[i] += self.mu * (w[i] - self.anchor[i]);
            }
        }
        if let Some(center) = &self.catalyst_center {
            for i in 0..g.len() {
                g[i] += self.tau * (w[i] - center[i]);
            }
        }
        g
    }

    fn eval(&self, w: &[f64]) -> Vec<f64> {
        self.eval_with(&self.local.gradient(w), w)
    }
}

impl InexactDane {
    /// Creates a solver with the given configuration.
    pub fn new(config: DaneConfig) -> Self {
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &DaneConfig {
        &self.config
    }

    /// Solves the DANE subproblem approximately with SVRG and returns the new
    /// local iterate. `catalyst_center` adds AIDE's `τ/2‖w − y‖²` term.
    #[allow(clippy::too_many_arguments)]
    fn solve_subproblem(
        &self,
        comm: &mut dyn Communicator,
        shard: &Dataset,
        local: &SoftmaxCrossEntropy,
        device: &Device,
        engine: &mut EngineSync,
        w_t: &[f64],
        global_grad: &[f64],
        catalyst_center: Option<&[f64]>,
        tau: f64,
        rng: &mut impl rand::Rng,
    ) -> Vec<f64> {
        let cfg = &self.config;
        let dim = local.dim();
        let n_local = shard.num_samples();
        // Fixed DANE correction vector: ∇φ_i(w_t) − η ∇F(w_t).
        let local_grad_at_anchor = local.gradient(w_t);
        engine.sync(comm, device);
        let mut correction = local_grad_at_anchor;
        vector::axpy(-cfg.eta, global_grad, &mut correction);

        let sub = SubproblemGrad {
            local,
            correction,
            anchor: w_t.to_vec(),
            mu: cfg.mu,
            tau,
            catalyst_center: catalyst_center.map(|c| c.to_vec()),
        };

        // SVRG: full subproblem gradient at the anchor, then minibatch
        // corrections. The anchor is refreshed once halfway through.
        let mut w = w_t.to_vec();
        let mut snapshot = w.clone();
        let mut full_grad_snapshot = sub.eval(&snapshot);
        engine.sync(comm, device);
        let batch = cfg.svrg_batch.min(n_local.max(1));
        let scale = n_local as f64 / batch as f64;
        for it in 0..cfg.svrg_iters {
            if it == cfg.svrg_iters / 2 {
                snapshot = w.clone();
                full_grad_snapshot = sub.eval(&snapshot);
                engine.sync(comm, device);
            }
            let idx = gen::sample_without_replacement(n_local, batch, rng);
            let mini = shard.select(&idx);
            let mini_obj = SoftmaxCrossEntropy::new(
                &mini,
                cfg.lambda * batch as f64 / (n_local.max(1) as f64 * comm.size() as f64),
            )
            .with_device(device.clone());
            // Stochastic estimate of ∇φ_i: scaled minibatch gradient.
            let gw = vector::scaled(scale, &mini_obj.gradient(&w));
            let gs = vector::scaled(scale, &mini_obj.gradient(&snapshot));
            engine.sync(comm, device);
            // SVRG direction on the subproblem: replace the φ_i part of the
            // gradient with its variance-reduced estimate.
            let gw_sub = sub.eval_with(&gw, &w);
            let gs_sub = sub.eval_with(&gs, &snapshot);
            let mut direction = gw_sub;
            vector::sub_assign(&mut direction, &gs_sub);
            vector::add_assign(&mut direction, &full_grad_snapshot);
            vector::axpy(-cfg.svrg_step, &direction, &mut w);
            if !vector::all_finite(&w) {
                // Diverged (step too large for this problem) — fall back to
                // the anchor so the outer loop stays well-defined.
                w = w_t.to_vec();
                break;
            }
        }
        debug_assert_eq!(w.len(), dim);
        w
    }

    /// Runs InexactDANE inside one rank of a communicator.
    pub fn run_distributed(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> DistributedRun {
        self.run_with_catalyst(comm, shard, test, None)
    }

    /// Runs AIDE (catalyst-accelerated InexactDANE) inside one rank of a
    /// communicator. The inner DANE configuration is `self.config()`; `aide`
    /// supplies the catalyst parameters.
    pub fn run_distributed_aide(
        &self,
        comm: &mut dyn Communicator,
        shard: &Dataset,
        test: Option<&Dataset>,
        aide: &AideConfig,
    ) -> DistributedRun {
        self.run_with_catalyst(comm, shard, test, Some(aide))
    }

    fn run_with_catalyst(
        &self,
        comm: &mut dyn Communicator,
        shard: &Dataset,
        test: Option<&Dataset>,
        aide: Option<&AideConfig>,
    ) -> DistributedRun {
        let cfg = &self.config;
        let n_workers = comm.size();
        let device = Device::new(cfg.device);
        let local = local_objective_on(shard, cfg.lambda, n_workers, &device);
        let mut engine = EngineSync::new(&device);
        let mut ws = nadmm_device::Workspace::new();
        let dim = local.dim();
        let mut rng = gen::seeded_rng(cfg.seed.wrapping_add(comm.rank() as u64 * 7919));
        let mut w = vec![0.0; dim];
        let mut w_prev = w.clone();
        let mut catalyst_y = w.clone();
        let solver_name = if aide.is_some() { "aide" } else { "inexact-dane" };
        let wall_start = Instant::now();
        let mut history = RunHistory::new(solver_name, shard.name(), n_workers);
        record_iteration(comm, &local, &mut engine, test, &w, 0, wall_start, &mut history);

        for k in 1..=cfg.max_iters {
            // Round 1: global gradient at the current iterate (or the
            // extrapolated point for AIDE).
            let anchor = if aide.is_some() { catalyst_y.clone() } else { w.clone() };
            let g = global_gradient(comm, &local, &mut engine, &mut ws, &anchor);

            // Local subproblem via SVRG.
            let (center, tau) = match aide {
                Some(a) => (Some(anchor.as_slice()), a.tau),
                None => (None, 0.0),
            };
            let mut w_local =
                self.solve_subproblem(comm, shard, &local, &device, &mut engine, &anchor, &g, center, tau, &mut rng);

            // Round 2: average the local solutions with an in-place
            // allreduce (the local solution buffer becomes the new iterate).
            comm.allreduce_sum_into(&mut w_local);
            for v in w_local.iter_mut() {
                *v /= n_workers as f64;
            }
            let w_new = w_local;

            if let Some(a) = aide {
                // Catalyst extrapolation.
                catalyst_y.copy_from_slice(&w_new);
                for i in 0..dim {
                    catalyst_y[i] += a.zeta * (w_new[i] - w_prev[i]);
                }
            }
            w_prev = std::mem::replace(&mut w, w_new);

            record_iteration(comm, &local, &mut engine, test, &w, k, wall_start, &mut history);
        }

        DistributedRun {
            w,
            history,
            comm_stats: comm.stats(),
            workspace: ws.stats(),
        }
    }

    /// Convenience wrapper spawning one rank per shard (InexactDANE).
    ///
    /// Superseded by the experiment layer (`nadmm-experiment`): build an
    /// `Experiment` with `SolverSpec::InexactDane` instead.
    #[deprecated(
        since = "0.1.0",
        note = "use the `nadmm-experiment` builder (`SolverSpec::InexactDane`) instead"
    )]
    pub fn run_cluster(&self, cluster: &Cluster, shards: &[Dataset], test: Option<&Dataset>) -> DistributedRun {
        let mut outputs = cluster.run_sharded(shards, |comm, shard| self.run_distributed(comm, shard, test));
        outputs.swap_remove(0)
    }

    /// Runs AIDE (accelerated InexactDANE) on a cluster.
    ///
    /// Superseded by the experiment layer (`nadmm-experiment`): build an
    /// `Experiment` with `SolverSpec::Aide` instead.
    #[deprecated(since = "0.1.0", note = "use the `nadmm-experiment` builder (`SolverSpec::Aide`) instead")]
    pub fn run_cluster_aide(
        &self,
        cluster: &Cluster,
        shards: &[Dataset],
        test: Option<&Dataset>,
        aide: &AideConfig,
    ) -> DistributedRun {
        let mut outputs = cluster.run_sharded(shards, |comm, shard| self.run_distributed_aide(comm, shard, test, aide));
        outputs.swap_remove(0)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the deprecated `run_cluster*` wrappers stay under test
mod tests {
    use super::*;
    use crate::common::local_objective;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::{partition_strong, SyntheticConfig};

    fn dataset(seed: u64) -> Dataset {
        SyntheticConfig::mnist_like()
            .with_train_size(80)
            .with_test_size(20)
            .with_num_features(6)
            .with_num_classes(3)
            .generate(seed)
            .0
    }

    fn quick_config() -> DaneConfig {
        DaneConfig {
            max_iters: 5,
            lambda: 1e-3,
            svrg_iters: 40,
            svrg_batch: 8,
            svrg_step: 5e-3,
            ..Default::default()
        }
    }

    #[test]
    fn inexact_dane_reduces_the_objective() {
        let train = dataset(1);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let run = InexactDane::new(quick_config()).run_cluster(&cluster, &shards, None);
        let first = run.history.records[0].objective;
        let last = run.history.final_objective().unwrap();
        assert!(last < first, "DANE should reduce the objective: {first} -> {last}");
    }

    #[test]
    fn aide_also_reduces_the_objective() {
        let train = dataset(2);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let aide = AideConfig {
            dane: quick_config(),
            tau: 0.5,
            zeta: 0.5,
        };
        let run = InexactDane::new(quick_config()).run_cluster_aide(&cluster, &shards, None, &aide);
        assert_eq!(run.history.solver, "aide");
        let first = run.history.records[0].objective;
        assert!(run.history.final_objective().unwrap() < first);
    }

    #[test]
    fn dane_is_much_slower_per_epoch_than_a_single_newton_like_pass() {
        // The paper's Figure 1 point: DANE's SVRG subproblems make its epoch
        // time far larger. We check the simulated per-epoch compute time is
        // at least an order of magnitude above a single gradient evaluation.
        let train = dataset(3);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let run = InexactDane::new(quick_config()).run_cluster(&cluster, &shards, None);
        let per_epoch = run.history.avg_epoch_time();
        // One plain gradient evaluation on the shard:
        let single_grad_time = {
            let local = local_objective(&shards[0], 1e-3, 2);
            DeviceSpec::tesla_p100().kernel_time(local.cost_value_grad().flops, local.cost_value_grad().bytes)
        };
        assert!(
            per_epoch > 10.0 * single_grad_time,
            "DANE epoch time {per_epoch} should dwarf a single gradient evaluation {single_grad_time}"
        );
    }

    #[test]
    fn diverging_svrg_steps_fall_back_gracefully() {
        let train = dataset(4);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let cfg = DaneConfig {
            svrg_step: 1e6,
            max_iters: 2,
            svrg_iters: 20,
            ..quick_config()
        };
        let run = InexactDane::new(cfg).run_cluster(&cluster, &shards, None);
        assert!(run.history.final_objective().unwrap().is_finite());
        assert!(run.w.iter().all(|v| v.is_finite()));
    }
}
