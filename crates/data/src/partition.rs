//! Data partitioning for strong- and weak-scaling experiments.
//!
//! * **Strong scaling** (paper Figure 2/3, "s1..s8"): the total number of
//!   training samples is fixed and split evenly across the workers, so more
//!   workers ⇒ fewer samples each.
//! * **Weak scaling** ("w1..w8"): every worker holds a fixed number of
//!   samples, so more workers ⇒ a proportionally bigger total problem.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Describes how a dataset was split across workers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Number of workers.
    pub num_workers: usize,
    /// Number of samples assigned to each worker (by rank).
    pub samples_per_worker: Vec<usize>,
    /// `"strong"` or `"weak"`.
    pub mode: String,
}

impl PartitionPlan {
    /// Total number of samples across all workers.
    pub fn total_samples(&self) -> usize {
        self.samples_per_worker.iter().sum()
    }
}

/// Strong-scaling partition: splits the *entire* dataset across `num_workers`
/// shards of (nearly) equal size. Every sample is assigned to exactly one
/// worker; the first `n % num_workers` workers get one extra sample.
///
/// # Panics
/// Panics if `num_workers == 0` or exceeds the number of samples.
pub fn partition_strong(data: &Dataset, num_workers: usize) -> (Vec<Dataset>, PartitionPlan) {
    assert!(num_workers > 0, "need at least one worker");
    let n = data.num_samples();
    assert!(num_workers <= n, "cannot split {n} samples across {num_workers} workers");
    let base = n / num_workers;
    let extra = n % num_workers;
    let mut shards = Vec::with_capacity(num_workers);
    let mut sizes = Vec::with_capacity(num_workers);
    let mut start = 0usize;
    for w in 0..num_workers {
        let len = base + usize::from(w < extra);
        shards.push(data.slice(start, start + len));
        sizes.push(len);
        start += len;
    }
    let plan = PartitionPlan {
        num_workers,
        samples_per_worker: sizes,
        mode: "strong".to_string(),
    };
    (shards, plan)
}

/// Weak-scaling partition: every worker receives exactly `per_worker`
/// samples taken from the front of the dataset (worker `w` gets samples
/// `[w·per_worker, (w+1)·per_worker)`).
///
/// # Panics
/// Panics if the dataset does not contain `num_workers * per_worker`
/// samples.
pub fn partition_weak(data: &Dataset, num_workers: usize, per_worker: usize) -> (Vec<Dataset>, PartitionPlan) {
    assert!(num_workers > 0, "need at least one worker");
    // An unchecked multiply would wrap in release builds, letting an absurd
    // request slip past the size check below and panic later with an
    // unrelated slicing error.
    let needed = num_workers
        .checked_mul(per_worker)
        .unwrap_or_else(|| panic!("weak scaling with {num_workers} workers × {per_worker} samples/worker overflows usize"));
    assert!(
        data.num_samples() >= needed,
        "weak scaling needs {needed} samples but the dataset has {}",
        data.num_samples()
    );
    let mut shards = Vec::with_capacity(num_workers);
    for w in 0..num_workers {
        shards.push(data.slice(w * per_worker, (w + 1) * per_worker));
    }
    let plan = PartitionPlan {
        num_workers,
        samples_per_worker: vec![per_worker; num_workers],
        mode: "weak".to_string(),
    };
    (shards, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_linalg::{DenseMatrix, Matrix};

    fn dataset(n: usize) -> Dataset {
        let x = DenseMatrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64);
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        Dataset::new("part-test", Matrix::Dense(x), labels, 4)
    }

    #[test]
    fn strong_partition_covers_all_samples() {
        let d = dataset(10);
        let (shards, plan) = partition_strong(&d, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(plan.total_samples(), 10);
        assert_eq!(plan.samples_per_worker, vec![4, 3, 3]);
        assert_eq!(plan.mode, "strong");
        // Shards are disjoint contiguous slices: first rows line up.
        assert_eq!(shards[0].features().to_dense().get(0, 0), 0.0);
        assert_eq!(shards[1].features().to_dense().get(0, 0), 12.0);
    }

    #[test]
    fn strong_partition_halves_shard_size_when_workers_double() {
        let d = dataset(64);
        let (s2, _) = partition_strong(&d, 2);
        let (s4, _) = partition_strong(&d, 4);
        assert_eq!(s2[0].num_samples(), 32);
        assert_eq!(s4[0].num_samples(), 16);
    }

    #[test]
    fn weak_partition_keeps_per_worker_constant() {
        let d = dataset(40);
        let (shards, plan) = partition_weak(&d, 4, 10);
        assert_eq!(shards.len(), 4);
        assert!(shards.iter().all(|s| s.num_samples() == 10));
        assert_eq!(plan.total_samples(), 40);
        assert_eq!(plan.mode, "weak");
    }

    #[test]
    #[should_panic]
    fn weak_partition_requires_enough_samples() {
        let d = dataset(10);
        partition_weak(&d, 4, 10);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn weak_partition_rejects_overflowing_requests_loudly() {
        let d = dataset(10);
        partition_weak(&d, usize::MAX / 2, 3);
    }

    #[test]
    #[should_panic]
    fn strong_partition_rejects_zero_workers() {
        let d = dataset(10);
        partition_strong(&d, 0);
    }

    #[test]
    fn single_worker_partitions_are_identity() {
        let d = dataset(7);
        let (s, plan) = partition_strong(&d, 1);
        assert_eq!(s[0].num_samples(), 7);
        assert_eq!(plan.samples_per_worker, vec![7]);
        let (w, _) = partition_weak(&d, 1, 7);
        assert_eq!(w[0].num_samples(), 7);
    }
}
