//! # nadmm-data
//!
//! Datasets for the Newton-ADMM reproduction.
//!
//! The paper evaluates on four public datasets (Table 1): HIGGS, MNIST,
//! CIFAR-10 and E18. Those datasets (and the disk space / download channel to
//! fetch them) are not available here, so this crate provides *synthetic
//! analogues* with matched shape: the same class counts, (scaled) feature
//! dimensions, sparsity patterns and — most importantly for the optimizer
//! comparison — matched conditioning (HIGGS well-conditioned and nearly
//! separable, CIFAR-10 ill-conditioned with heavily correlated features, E18
//! sparse and extremely high-dimensional). A LIBSVM reader is included so
//! that the real datasets can be dropped in unchanged when available.
//!
//! The crate also provides the strong/weak-scaling partitioners used by every
//! distributed experiment (Figures 2–5).

pub mod dataset;
pub mod libsvm;
pub mod partition;
pub mod synthetic;

pub use dataset::Dataset;
pub use libsvm::{
    parse_libsvm, parse_libsvm_pair, parse_libsvm_with_schema, read_libsvm, read_libsvm_pair, read_libsvm_with_schema,
    LibsvmError, LibsvmSchema,
};
pub use partition::{partition_strong, partition_weak, PartitionPlan};
pub use synthetic::{DatasetKind, SyntheticConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_are_usable() {
        let cfg = SyntheticConfig::mnist_like().with_train_size(50).with_test_size(10);
        let (train, test) = cfg.generate(1);
        assert_eq!(train.num_samples(), 50);
        assert_eq!(test.num_samples(), 10);
        assert_eq!(train.num_classes(), 10);
    }
}
