//! Synthetic analogues of the paper's four datasets (Table 1).
//!
//! Every generator draws class-conditional Gaussian data `x | y=c ~ N(μ_c, Σ)`
//! where the class means `μ_c` control separability (test accuracy head-room)
//! and the shared covariance `Σ` controls conditioning of the logistic
//! regression Hessian (`Σ` with a fast-decaying spectrum ⇒ ill-conditioned
//! problem, which is exactly the CIFAR-10-vs-HIGGS distinction the paper's
//! convergence discussion relies on). The E18 analogue additionally applies a
//! sparsification mask and a non-negativity clamp so the feature matrix is a
//! realistic sparse count-like matrix stored in CSR form.

use crate::dataset::Dataset;
use nadmm_linalg::{gen, CsrMatrix, DenseMatrix, Matrix};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Which of the paper's datasets a synthetic config mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// HIGGS: 2 classes, 28 dense features, 11M samples, well-conditioned.
    Higgs,
    /// MNIST: 10 classes, 784 dense features, 70k samples.
    Mnist,
    /// CIFAR-10: 10 classes, 3072 dense features, 60k samples, ill-conditioned.
    Cifar10,
    /// E18: 20 classes, ~280k sparse features, 1.3M samples.
    E18,
}

impl DatasetKind {
    /// Paper name of the dataset.
    pub fn paper_name(&self) -> &'static str {
        match self {
            DatasetKind::Higgs => "HIGGS",
            DatasetKind::Mnist => "MNIST",
            DatasetKind::Cifar10 => "CIFAR-10",
            DatasetKind::E18 => "E18",
        }
    }

    /// Table 1 row: (classes, samples, test size, features) as in the paper.
    pub fn paper_table1(&self) -> (usize, usize, usize, usize) {
        match self {
            DatasetKind::Higgs => (2, 11_000_000, 1_000_000, 28),
            DatasetKind::Mnist => (10, 70_000, 10_000, 784),
            DatasetKind::Cifar10 => (10, 60_000, 10_000, 3_072),
            DatasetKind::E18 => (20, 1_306_128, 6_000, 279_998),
        }
    }
}

/// Configuration of a synthetic dataset generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Which paper dataset this mimics.
    pub kind: DatasetKind,
    /// Number of training samples to generate.
    pub train_size: usize,
    /// Number of test samples to generate.
    pub test_size: usize,
    /// Feature dimension p.
    pub num_features: usize,
    /// Number of classes C.
    pub num_classes: usize,
    /// Distance between class means (larger ⇒ more separable ⇒ higher
    /// achievable accuracy).
    pub class_separation: f64,
    /// Exponential decay rate of the feature covariance spectrum; `0` gives
    /// an isotropic (well-conditioned) covariance, larger values concentrate
    /// variance in a few directions (ill-conditioned Hessian).
    pub spectrum_decay: f64,
    /// Fraction of feature entries kept (1.0 = dense). Values below 1 switch
    /// the output to CSR storage.
    pub density: f64,
    /// Label noise: probability that a sample's label is replaced by a
    /// uniformly random class.
    pub label_noise: f64,
}

impl SyntheticConfig {
    /// HIGGS analogue: binary, 28 dense features, well-conditioned, modest
    /// separability (the paper reports ~64% test accuracy).
    pub fn higgs_like() -> Self {
        Self {
            kind: DatasetKind::Higgs,
            train_size: 110_000,
            test_size: 10_000,
            num_features: 28,
            num_classes: 2,
            class_separation: 1.0,
            spectrum_decay: 0.02,
            density: 1.0,
            label_noise: 0.25,
        }
    }

    /// MNIST analogue: 10 classes, 784 dense features, fairly separable.
    pub fn mnist_like() -> Self {
        Self {
            kind: DatasetKind::Mnist,
            train_size: 7_000,
            test_size: 1_000,
            num_features: 784,
            num_classes: 10,
            class_separation: 3.0,
            spectrum_decay: 0.005,
            density: 1.0,
            label_noise: 0.02,
        }
    }

    /// CIFAR-10 analogue: 10 classes, 3072 dense features, heavily correlated
    /// (ill-conditioned) and weakly separable — linear models plateau around
    /// 40% accuracy, as in the paper.
    pub fn cifar10_like() -> Self {
        Self {
            kind: DatasetKind::Cifar10,
            train_size: 6_000,
            test_size: 1_000,
            num_features: 3_072,
            num_classes: 10,
            class_separation: 0.8,
            spectrum_decay: 0.01,
            density: 1.0,
            label_noise: 0.3,
        }
    }

    /// E18 analogue: 20 classes, very high-dimensional sparse counts.
    /// The paper's strong-scaling runs subsample 60k training points; the
    /// feature dimension here defaults to a scaled-down 27,998/10 ≈ 2,800
    /// (override with [`SyntheticConfig::with_num_features`]).
    pub fn e18_like() -> Self {
        Self {
            kind: DatasetKind::E18,
            train_size: 12_000,
            test_size: 1_200,
            num_features: 2_800,
            num_classes: 20,
            class_separation: 2.5,
            spectrum_decay: 0.002,
            density: 0.05,
            label_noise: 0.05,
        }
    }

    /// Returns the config for a dataset kind with its default scaled sizes.
    pub fn for_kind(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::Higgs => Self::higgs_like(),
            DatasetKind::Mnist => Self::mnist_like(),
            DatasetKind::Cifar10 => Self::cifar10_like(),
            DatasetKind::E18 => Self::e18_like(),
        }
    }

    /// Overrides the number of training samples.
    pub fn with_train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Overrides the number of test samples.
    pub fn with_test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Overrides the feature dimension.
    pub fn with_num_features(mut self, p: usize) -> Self {
        self.num_features = p;
        self
    }

    /// Overrides the number of classes.
    pub fn with_num_classes(mut self, c: usize) -> Self {
        self.num_classes = c;
        self
    }

    /// Ratio between this config's sizes and the paper's Table 1 sizes —
    /// recorded in EXPERIMENTS.md for every figure.
    pub fn scale_factor(&self) -> f64 {
        let (_, n_paper, _, _) = self.kind.paper_table1();
        self.train_size as f64 / n_paper as f64
    }

    /// Generates `(train, test)` datasets with the given RNG seed. The two
    /// splits share the same class means and covariance (they are drawn from
    /// the same distribution), so test accuracy measures real generalisation.
    pub fn generate(&self, seed: u64) -> (Dataset, Dataset) {
        let mut rng = gen::seeded_rng(seed);
        let (train, means) = self.generate_split(self.train_size, &mut rng, "train", None);
        let (test, _) = self.generate_split(self.test_size, &mut rng, "test", Some(&means));
        (train, test)
    }

    fn generate_split(
        &self,
        n: usize,
        rng: &mut impl Rng,
        split: &str,
        shared_means: Option<&[Vec<f64>]>,
    ) -> (Dataset, Vec<Vec<f64>>) {
        let p = self.num_features;
        let c = self.num_classes;
        let normal = Normal::new(0.0, 1.0).expect("valid normal");

        // Class means: random directions scaled by the separation parameter
        // (reused for the test split so both splits share one distribution).
        let means: Vec<Vec<f64>> = match shared_means {
            Some(m) => m.to_vec(),
            None => (0..c)
                .map(|_| {
                    let mut m = gen::gaussian_vector(p, rng);
                    let norm = nadmm_linalg::vector::norm2(&m).max(1e-12);
                    for v in m.iter_mut() {
                        *v *= self.class_separation / norm * (p as f64).sqrt() / 4.0;
                    }
                    m
                })
                .collect(),
        };

        // Per-feature standard deviations following an exponentially decaying
        // spectrum: sqrt(λ_j) with λ_j = exp(-decay * j).
        let stds: Vec<f64> = (0..p).map(|j| (-self.spectrum_decay * j as f64 / 2.0).exp()).collect();

        let mut labels = Vec::with_capacity(n);
        let mut dense = DenseMatrix::zeros(n, p);
        for i in 0..n {
            let mut label = rng.gen_range(0..c);
            if self.label_noise > 0.0 && rng.gen::<f64>() < self.label_noise {
                label = rng.gen_range(0..c);
            }
            labels.push(label);
            let mu = &means[label];
            let row = dense.row_mut(i);
            for j in 0..p {
                row[j] = mu[j] + stds[j] * normal.sample(rng);
            }
        }

        let name = format!("{}-like/{split}", self.kind.paper_name().to_lowercase());
        let dataset = if self.density >= 1.0 {
            Dataset::new(name, Matrix::Dense(dense), labels, c)
        } else {
            // Sparsify: keep each entry with probability `density`, clamp to
            // non-negative counts (gene-expression-like), drop exact zeros.
            let mut triplets = Vec::new();
            for i in 0..n {
                for j in 0..p {
                    if rng.gen::<f64>() < self.density {
                        let v = dense.get(i, j).abs();
                        if v > 1e-9 {
                            triplets.push((i, j, v));
                        }
                    }
                }
            }
            let csr = CsrMatrix::from_triplets(n, p, &triplets);
            Dataset::new(name, Matrix::Sparse(csr), labels, c)
        };
        (dataset, means)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_numbers() {
        assert_eq!(DatasetKind::Higgs.paper_table1(), (2, 11_000_000, 1_000_000, 28));
        assert_eq!(DatasetKind::Mnist.paper_table1(), (10, 70_000, 10_000, 784));
        assert_eq!(DatasetKind::Cifar10.paper_table1(), (10, 60_000, 10_000, 3_072));
        assert_eq!(DatasetKind::E18.paper_table1(), (20, 1_306_128, 6_000, 279_998));
        assert_eq!(DatasetKind::E18.paper_name(), "E18");
    }

    #[test]
    fn generators_produce_requested_shapes() {
        let cfg = SyntheticConfig::mnist_like()
            .with_train_size(120)
            .with_test_size(30)
            .with_num_features(20);
        let (train, test) = cfg.generate(7);
        assert_eq!(train.num_samples(), 120);
        assert_eq!(test.num_samples(), 30);
        assert_eq!(train.num_features(), 20);
        assert_eq!(train.num_classes(), 10);
        assert!(!train.is_sparse());
    }

    #[test]
    fn higgs_like_is_binary() {
        let cfg = SyntheticConfig::higgs_like().with_train_size(100).with_test_size(20);
        let (train, _) = cfg.generate(3);
        assert_eq!(train.num_classes(), 2);
        assert!(train.labels().iter().all(|&l| l < 2));
    }

    #[test]
    fn e18_like_is_sparse() {
        let cfg = SyntheticConfig::e18_like()
            .with_train_size(80)
            .with_test_size(20)
            .with_num_features(200);
        let (train, _) = cfg.generate(11);
        assert!(train.is_sparse());
        assert_eq!(train.num_classes(), 20);
        // Density should be roughly the configured 5%.
        let density = train.features().stored_entries() as f64 / (80.0 * 200.0);
        assert!(density < 0.15, "density {density} too high for a sparse dataset");
    }

    #[test]
    fn all_classes_are_represented_for_reasonable_sizes() {
        let cfg = SyntheticConfig::mnist_like()
            .with_train_size(500)
            .with_test_size(50)
            .with_num_features(10);
        let (train, _) = cfg.generate(5);
        let hist = train.class_histogram();
        assert!(hist.iter().all(|&h| h > 0), "every class should appear: {hist:?}");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let cfg = SyntheticConfig::higgs_like()
            .with_train_size(50)
            .with_test_size(10)
            .with_num_features(5);
        let (a, _) = cfg.generate(1);
        let (b, _) = cfg.generate(1);
        let (c, _) = cfg.generate(2);
        assert_eq!(a.features().to_dense(), b.features().to_dense());
        assert_ne!(a.features().to_dense(), c.features().to_dense());
    }

    #[test]
    fn scale_factor_is_fraction_of_paper_size() {
        let cfg = SyntheticConfig::mnist_like().with_train_size(7_000);
        assert!((cfg.scale_factor() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn for_kind_round_trips() {
        for kind in [DatasetKind::Higgs, DatasetKind::Mnist, DatasetKind::Cifar10, DatasetKind::E18] {
            assert_eq!(SyntheticConfig::for_kind(kind).kind, kind);
        }
    }

    #[test]
    fn train_and_test_share_class_means() {
        // The two splits must come from the same distribution, otherwise test
        // accuracy is meaningless. Check that per-class empirical means of
        // train and test point in the same direction.
        let cfg = SyntheticConfig::mnist_like()
            .with_train_size(400)
            .with_test_size(400)
            .with_num_features(12)
            .with_num_classes(3);
        let (train, test) = cfg.generate(13);
        for class in 0..3 {
            let mean_of = |d: &crate::dataset::Dataset| {
                let idx: Vec<usize> = d
                    .labels()
                    .iter()
                    .enumerate()
                    .filter(|(_, &l)| l == class)
                    .map(|(i, _)| i)
                    .collect();
                let sel = d.select(&idx).features().to_dense();
                sel.col_means()
            };
            let m_train = mean_of(&train);
            let m_test = mean_of(&test);
            let dot: f64 = m_train.iter().zip(&m_test).map(|(a, b)| a * b).sum();
            let na: f64 = m_train.iter().map(|v| v * v).sum::<f64>().sqrt();
            let nb: f64 = m_test.iter().map(|v| v * v).sum::<f64>().sqrt();
            let cosine = dot / (na * nb).max(1e-12);
            assert!(cosine > 0.8, "class {class} train/test means disagree (cosine {cosine})");
        }
    }

    #[test]
    fn builder_overrides_apply() {
        let cfg = SyntheticConfig::cifar10_like()
            .with_num_classes(4)
            .with_num_features(16)
            .with_train_size(40)
            .with_test_size(8);
        let (train, test) = cfg.generate(9);
        assert_eq!(train.num_classes(), 4);
        assert_eq!(train.num_features(), 16);
        assert_eq!(test.num_samples(), 8);
    }
}
