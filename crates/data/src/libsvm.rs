//! LIBSVM / SVMlight format parser.
//!
//! The paper's datasets (HIGGS, MNIST, CIFAR-10, E18) are commonly
//! distributed in LIBSVM format (`label idx:value idx:value …`, 1-based
//! indices). This parser lets users drop the real datasets into the
//! reproduction unchanged; the tests and benches use the synthetic analogues
//! from [`crate::synthetic`].

use crate::dataset::Dataset;
use nadmm_linalg::{CsrMatrix, Matrix};
use std::io::BufRead;
use std::path::Path;

/// Errors from parsing LIBSVM data.
#[derive(Debug)]
pub enum LibsvmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (bad label, bad index:value pair, …).
    Parse { line: usize, message: String },
}

impl std::fmt::Display for LibsvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibsvmError::Io(e) => write!(f, "i/o error: {e}"),
            LibsvmError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for LibsvmError {}

impl From<std::io::Error> for LibsvmError {
    fn from(e: std::io::Error) -> Self {
        LibsvmError::Io(e)
    }
}

/// Parses LIBSVM-formatted text into a sparse [`Dataset`].
///
/// Labels may be arbitrary integers (e.g. `-1/+1` or `1..10`); they are
/// remapped to contiguous class indices `0..C` in sorted order of the
/// distinct labels encountered.
pub fn parse_libsvm(reader: impl BufRead, name: &str) -> Result<Dataset, LibsvmError> {
    let mut raw_labels: Vec<i64> = Vec::new();
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_col = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row = raw_labels.len();
        let mut parts = line.split_whitespace();
        let label_tok = parts.next().ok_or_else(|| LibsvmError::Parse {
            line: lineno + 1,
            message: "missing label".into(),
        })?;
        let label: i64 = label_tok
            .parse::<f64>()
            .map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad label '{label_tok}': {e}"),
            })?
            .round() as i64;
        raw_labels.push(label);
        for tok in parts {
            let (idx, val) = tok.split_once(':').ok_or_else(|| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("expected idx:value, got '{tok}'"),
            })?;
            let idx: usize = idx.parse().map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad index '{idx}': {e}"),
            })?;
            if idx == 0 {
                return Err(LibsvmError::Parse {
                    line: lineno + 1,
                    message: "LIBSVM indices are 1-based".into(),
                });
            }
            let val: f64 = val.parse().map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad value '{val}': {e}"),
            })?;
            max_col = max_col.max(idx);
            triplets.push((row, idx - 1, val));
        }
    }
    if raw_labels.is_empty() {
        return Err(LibsvmError::Parse {
            line: 0,
            message: "empty input".into(),
        });
    }
    // Remap labels to 0..C.
    let mut distinct: Vec<i64> = raw_labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let num_classes = distinct.len().max(2);
    let labels: Vec<usize> = raw_labels
        .iter()
        .map(|l| distinct.binary_search(l).expect("label present"))
        .collect();
    let features = CsrMatrix::from_triplets(raw_labels.len(), max_col.max(1), &triplets);
    Ok(Dataset::new(name, Matrix::Sparse(features), labels, num_classes))
}

/// Reads and parses a LIBSVM file from disk.
pub fn read_libsvm(path: impl AsRef<Path>) -> Result<Dataset, LibsvmError> {
    let file = std::fs::File::open(path.as_ref())?;
    let name = path
        .as_ref()
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("libsvm")
        .to_string();
    parse_libsvm(std::io::BufReader::new(file), &name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_multiclass_file() {
        let text = "1 1:0.5 3:1.0\n2 2:2.0\n3 1:-1.0 2:0.25 3:0.75\n";
        let d = parse_libsvm(Cursor::new(text), "toy").unwrap();
        assert_eq!(d.num_samples(), 3);
        assert_eq!(d.num_features(), 3);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.labels(), &[0, 1, 2]);
        let dense = d.features().to_dense();
        assert_eq!(dense.get(0, 0), 0.5);
        assert_eq!(dense.get(0, 2), 1.0);
        assert_eq!(dense.get(1, 1), 2.0);
    }

    #[test]
    fn remaps_plus_minus_one_labels() {
        let text = "-1 1:1.0\n+1 1:2.0\n-1 2:0.5\n";
        let d = parse_libsvm(Cursor::new(text), "binary").unwrap();
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.labels(), &[0, 1, 0]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n1 1:1.0\n2 1:2.0\n";
        let d = parse_libsvm(Cursor::new(text), "c").unwrap();
        assert_eq!(d.num_samples(), 2);
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "1 0:1.0\n";
        let err = parse_libsvm(Cursor::new(text), "bad").unwrap_err();
        assert!(matches!(err, LibsvmError::Parse { .. }));
        assert!(format!("{err}").contains("1-based"));
    }

    #[test]
    fn rejects_malformed_pairs_and_labels() {
        assert!(parse_libsvm(Cursor::new("abc 1:1.0\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new("1 12\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new("1 x:1.0\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new("1 1:zz\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new(""), "bad").is_err());
    }

    #[test]
    fn read_from_disk_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("nadmm_libsvm_test.txt");
        std::fs::write(&path, "1 1:1.5\n2 2:2.5\n").unwrap();
        let d = read_libsvm(&path).unwrap();
        assert_eq!(d.num_samples(), 2);
        std::fs::remove_file(&path).ok();
        assert!(read_libsvm(dir.join("does_not_exist_nadmm.txt")).is_err());
    }
}
