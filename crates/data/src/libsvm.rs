//! LIBSVM / SVMlight format parser.
//!
//! The paper's datasets (HIGGS, MNIST, CIFAR-10, E18) are commonly
//! distributed in LIBSVM format (`label idx:value idx:value …`, 1-based
//! indices). This parser lets users drop the real datasets into the
//! reproduction unchanged; the tests and benches use the synthetic analogues
//! from [`crate::synthetic`].
//!
//! ## Schemas: keeping train/test splits dimensionally consistent
//!
//! [`parse_libsvm`] *infers* the feature count from the largest index seen
//! and remaps labels per file, which is a classic LIBSVM footgun: a test
//! split that happens to miss the highest feature index (sparse tails often
//! do) or a label class produces a dataset that disagrees dimensionally
//! with its train split, and the trained `d×k` iterate cannot even be
//! evaluated on it. [`LibsvmSchema`] pins both explicitly, and
//! [`read_libsvm_pair`] parses both splits under one shared schema (dims =
//! union of the two files, label map = train split) so the pair always
//! agrees.

use crate::dataset::Dataset;
use nadmm_linalg::{CsrMatrix, Matrix};
use std::io::BufRead;
use std::path::Path;

/// Errors from parsing LIBSVM data.
#[derive(Debug)]
pub enum LibsvmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (bad label, bad index:value pair, …).
    Parse { line: usize, message: String },
    /// The file does not fit the declared [`LibsvmSchema`].
    Schema { line: usize, message: String },
}

impl std::fmt::Display for LibsvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LibsvmError::Io(e) => write!(f, "i/o error: {e}"),
            LibsvmError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            LibsvmError::Schema { line, message } => write!(f, "schema violation on line {line}: {message}"),
        }
    }
}

impl std::error::Error for LibsvmError {}

impl From<std::io::Error> for LibsvmError {
    fn from(e: std::io::Error) -> Self {
        LibsvmError::Io(e)
    }
}

/// An explicit LIBSVM schema: the feature dimensionality and the label
/// universe. Datasets parsed under the same schema are guaranteed to agree
/// on `num_features`, `num_classes`, and the label → class-index mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibsvmSchema {
    /// Number of features (1-based LIBSVM indices run `1..=num_features`).
    pub num_features: usize,
    /// The raw labels, in ascending order; label `labels[i]` maps to class
    /// index `i`. (Constructors sort and dedup for you.)
    pub labels: Vec<i64>,
}

impl LibsvmSchema {
    /// Builds a schema from a feature count and any collection of raw
    /// labels (sorted and deduplicated internally).
    pub fn new(num_features: usize, labels: impl IntoIterator<Item = i64>) -> Self {
        let mut labels: Vec<i64> = labels.into_iter().collect();
        labels.sort_unstable();
        labels.dedup();
        Self { num_features, labels }
    }

    /// The number of classes the schema defines (at least 2, matching the
    /// multiclass objectives downstream).
    pub fn num_classes(&self) -> usize {
        self.labels.len().max(2)
    }

    /// The class index of a raw label, if it is part of the schema.
    pub fn class_of(&self, label: i64) -> Option<usize> {
        self.labels.binary_search(&label).ok()
    }
}

/// One parsed file before label remapping / matrix assembly.
struct RawFile {
    raw_labels: Vec<i64>,
    triplets: Vec<(usize, usize, f64)>,
    max_col: usize,
    /// 1-based source line of each sample (for schema error messages).
    lines: Vec<usize>,
}

fn parse_raw(reader: impl BufRead) -> Result<RawFile, LibsvmError> {
    let mut raw = RawFile {
        raw_labels: Vec::new(),
        triplets: Vec::new(),
        max_col: 0,
        lines: Vec::new(),
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row = raw.raw_labels.len();
        let mut parts = line.split_whitespace();
        let label_tok = parts.next().ok_or_else(|| LibsvmError::Parse {
            line: lineno + 1,
            message: "missing label".into(),
        })?;
        let label: i64 = label_tok
            .parse::<f64>()
            .map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad label '{label_tok}': {e}"),
            })?
            .round() as i64;
        raw.raw_labels.push(label);
        raw.lines.push(lineno + 1);
        for tok in parts {
            let (idx, val) = tok.split_once(':').ok_or_else(|| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("expected idx:value, got '{tok}'"),
            })?;
            let idx: usize = idx.parse().map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad index '{idx}': {e}"),
            })?;
            if idx == 0 {
                return Err(LibsvmError::Parse {
                    line: lineno + 1,
                    message: "LIBSVM indices are 1-based".into(),
                });
            }
            let val: f64 = val.parse().map_err(|e| LibsvmError::Parse {
                line: lineno + 1,
                message: format!("bad value '{val}': {e}"),
            })?;
            raw.max_col = raw.max_col.max(idx);
            raw.triplets.push((row, idx - 1, val));
        }
    }
    if raw.raw_labels.is_empty() {
        return Err(LibsvmError::Parse {
            line: 0,
            message: "empty input".into(),
        });
    }
    Ok(raw)
}

/// Assembles a parsed file into a [`Dataset`] under a schema.
fn assemble(raw: &RawFile, name: &str, schema: &LibsvmSchema) -> Result<Dataset, LibsvmError> {
    if raw.max_col > schema.num_features {
        let (row, _, _) = raw
            .triplets
            .iter()
            .find(|(_, col, _)| col + 1 == raw.max_col)
            .copied()
            .expect("max_col came from a triplet");
        return Err(LibsvmError::Schema {
            line: raw.lines[row],
            message: format!(
                "feature index {} exceeds the schema's num_features {}",
                raw.max_col, schema.num_features
            ),
        });
    }
    let mut labels = Vec::with_capacity(raw.raw_labels.len());
    for (row, &label) in raw.raw_labels.iter().enumerate() {
        match schema.class_of(label) {
            Some(class) => labels.push(class),
            None => {
                return Err(LibsvmError::Schema {
                    line: raw.lines[row],
                    message: format!("label {label} is not part of the schema's label set {:?}", schema.labels),
                })
            }
        }
    }
    let features = CsrMatrix::from_triplets(raw.raw_labels.len(), schema.num_features.max(1), &raw.triplets);
    Ok(Dataset::new(name, Matrix::Sparse(features), labels, schema.num_classes()))
}

/// The schema a file *implies*: `num_features` from the largest index seen,
/// labels from the distinct values encountered.
fn inferred_schema(raw: &RawFile) -> LibsvmSchema {
    LibsvmSchema::new(raw.max_col.max(1), raw.raw_labels.iter().copied())
}

/// Parses LIBSVM-formatted text into a sparse [`Dataset`], inferring the
/// schema from the file itself: `num_features` is the largest index seen and
/// labels are remapped to contiguous class indices `0..C` in sorted order of
/// the distinct labels encountered.
///
/// When parsing a train/test *pair*, prefer [`read_libsvm_pair`] (or
/// [`parse_libsvm_with_schema`] with an explicit schema): per-file inference
/// can make the two splits disagree dimensionally.
pub fn parse_libsvm(reader: impl BufRead, name: &str) -> Result<Dataset, LibsvmError> {
    let raw = parse_raw(reader)?;
    let schema = inferred_schema(&raw);
    assemble(&raw, name, &schema)
}

/// Parses LIBSVM-formatted text under an explicit [`LibsvmSchema`]. Feature
/// indices beyond `schema.num_features` and labels outside `schema.labels`
/// are loud [`LibsvmError::Schema`] errors instead of silently reshaping the
/// dataset.
pub fn parse_libsvm_with_schema(reader: impl BufRead, name: &str, schema: &LibsvmSchema) -> Result<Dataset, LibsvmError> {
    let raw = parse_raw(reader)?;
    assemble(&raw, name, schema)
}

/// Parses a `(train, test)` pair from readers under one shared schema, so
/// the two datasets agree on `num_features`, `num_classes`, and the label
/// mapping even when the test split misses the highest feature index or a
/// label class. The feature dimensionality is the *union* of both splits —
/// real sparse pairs (news20, rcv1, …) routinely carry test-only feature
/// indices, which are benign (the trained iterate simply has zero weight
/// there) — while the label map comes from the **train split alone**: a
/// test label the model was never trained on is a loud error.
pub fn parse_libsvm_pair(
    train: impl BufRead,
    train_name: &str,
    test: impl BufRead,
    test_name: &str,
) -> Result<(Dataset, Dataset), LibsvmError> {
    let raw_train = parse_raw(train)?;
    let raw_test = parse_raw(test)?;
    let schema = LibsvmSchema::new(
        raw_train.max_col.max(raw_test.max_col).max(1),
        raw_train.raw_labels.iter().copied(),
    );
    let train = assemble(&raw_train, train_name, &schema)?;
    let test = assemble(&raw_test, test_name, &schema)?;
    Ok((train, test))
}

fn stem_of(path: &Path) -> String {
    path.file_stem().and_then(|s| s.to_str()).unwrap_or("libsvm").to_string()
}

/// Reads and parses a LIBSVM file from disk (schema inferred from the file).
pub fn read_libsvm(path: impl AsRef<Path>) -> Result<Dataset, LibsvmError> {
    let file = std::fs::File::open(path.as_ref())?;
    parse_libsvm(std::io::BufReader::new(file), &stem_of(path.as_ref()))
}

/// Reads and parses a LIBSVM file from disk under an explicit schema.
pub fn read_libsvm_with_schema(path: impl AsRef<Path>, schema: &LibsvmSchema) -> Result<Dataset, LibsvmError> {
    let file = std::fs::File::open(path.as_ref())?;
    parse_libsvm_with_schema(std::io::BufReader::new(file), &stem_of(path.as_ref()), schema)
}

/// Reads a `(train, test)` pair from disk with the train split's schema
/// applied to both (see [`parse_libsvm_pair`]).
pub fn read_libsvm_pair(train_path: impl AsRef<Path>, test_path: impl AsRef<Path>) -> Result<(Dataset, Dataset), LibsvmError> {
    let train = std::fs::File::open(train_path.as_ref())?;
    let test = std::fs::File::open(test_path.as_ref())?;
    parse_libsvm_pair(
        std::io::BufReader::new(train),
        &stem_of(train_path.as_ref()),
        std::io::BufReader::new(test),
        &stem_of(test_path.as_ref()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_multiclass_file() {
        let text = "1 1:0.5 3:1.0\n2 2:2.0\n3 1:-1.0 2:0.25 3:0.75\n";
        let d = parse_libsvm(Cursor::new(text), "toy").unwrap();
        assert_eq!(d.num_samples(), 3);
        assert_eq!(d.num_features(), 3);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.labels(), &[0, 1, 2]);
        let dense = d.features().to_dense();
        assert_eq!(dense.get(0, 0), 0.5);
        assert_eq!(dense.get(0, 2), 1.0);
        assert_eq!(dense.get(1, 1), 2.0);
    }

    #[test]
    fn remaps_plus_minus_one_labels() {
        let text = "-1 1:1.0\n+1 1:2.0\n-1 2:0.5\n";
        let d = parse_libsvm(Cursor::new(text), "binary").unwrap();
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.labels(), &[0, 1, 0]);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n1 1:1.0\n2 1:2.0\n";
        let d = parse_libsvm(Cursor::new(text), "c").unwrap();
        assert_eq!(d.num_samples(), 2);
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "1 0:1.0\n";
        let err = parse_libsvm(Cursor::new(text), "bad").unwrap_err();
        assert!(matches!(err, LibsvmError::Parse { .. }));
        assert!(format!("{err}").contains("1-based"));
    }

    #[test]
    fn rejects_malformed_pairs_and_labels() {
        assert!(parse_libsvm(Cursor::new("abc 1:1.0\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new("1 12\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new("1 x:1.0\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new("1 1:zz\n"), "bad").is_err());
        assert!(parse_libsvm(Cursor::new(""), "bad").is_err());
    }

    #[test]
    fn read_from_disk_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("nadmm_libsvm_test.txt");
        std::fs::write(&path, "1 1:1.5\n2 2:2.5\n").unwrap();
        let d = read_libsvm(&path).unwrap();
        assert_eq!(d.num_samples(), 2);
        std::fs::remove_file(&path).ok();
        assert!(read_libsvm(dir.join("does_not_exist_nadmm.txt")).is_err());
    }

    #[test]
    fn schema_pins_dims_and_label_map() {
        let schema = LibsvmSchema::new(5, [3, 1, 3, 7]); // sorted+deduped to [1, 3, 7]
        assert_eq!(schema.labels, vec![1, 3, 7]);
        assert_eq!(schema.num_classes(), 3);
        assert_eq!(schema.class_of(3), Some(1));
        assert_eq!(schema.class_of(2), None);
        let d = parse_libsvm_with_schema(Cursor::new("7 2:1.0\n1 1:0.5\n"), "s", &schema).unwrap();
        assert_eq!(d.num_features(), 5, "schema dims beat the max index seen");
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.labels(), &[2, 0], "labels map through the schema, not file order");
    }

    #[test]
    fn schema_violations_are_loud() {
        let schema = LibsvmSchema::new(3, [1, 2]);
        let err = parse_libsvm_with_schema(Cursor::new("1 4:1.0\n"), "s", &schema).unwrap_err();
        assert!(matches!(err, LibsvmError::Schema { .. }));
        assert!(format!("{err}").contains("num_features 3"), "{err}");
        let err = parse_libsvm_with_schema(Cursor::new("1 1:1.0\n9 2:1.0\n"), "s", &schema).unwrap_err();
        assert!(format!("{err}").contains("label 9"), "{err}");
        assert!(format!("{err}").contains("line 2"), "{err}");
    }

    /// The regression this module exists for: a test split missing the
    /// highest feature index *and* a label class used to come out with
    /// different `num_features`/`num_classes`/label mapping than its train
    /// split. Under `parse_libsvm_pair` the pair must agree exactly.
    #[test]
    fn paired_parsing_keeps_test_split_dimensionally_consistent_with_train() {
        let train_text = "1 1:0.5 4:1.0\n2 2:2.0\n3 3:0.25\n"; // features 1..=4, labels {1,2,3}
        let test_text = "3 1:1.0\n3 2:0.5\n"; // misses feature 4 and labels 1, 2
                                              // Per-file inference disagrees — the historic bug:
        let lone_test = parse_libsvm(Cursor::new(test_text), "test").unwrap();
        assert_eq!(lone_test.num_features(), 2, "inference sees only 2 features");
        assert_eq!(lone_test.labels(), &[0, 0], "inference remaps label 3 to class 0");
        // The paired parse agrees with the train split:
        let (train, test) = parse_libsvm_pair(Cursor::new(train_text), "train", Cursor::new(test_text), "test").unwrap();
        assert_eq!(train.num_features(), 4);
        assert_eq!(test.num_features(), 4);
        assert_eq!(train.num_classes(), 3);
        assert_eq!(test.num_classes(), 3);
        assert_eq!(test.labels(), &[2, 2], "label 3 keeps the train split's class index");
    }

    #[test]
    fn paired_parsing_widens_dims_to_the_union_but_rejects_unseen_labels() {
        let train_text = "1 1:0.5\n2 2:2.0\n";
        // Test-only feature indices are benign: both splits widen to the
        // union dimensionality (the trained iterate has zero weight there).
        let (train, test) = parse_libsvm_pair(Cursor::new(train_text), "tr", Cursor::new("1 5:1.0\n"), "te").unwrap();
        assert_eq!(train.num_features(), 5);
        assert_eq!(test.num_features(), 5);
        // A test label the model was never trained on is a loud error.
        let err = parse_libsvm_pair(Cursor::new(train_text), "tr", Cursor::new("4 1:1.0\n"), "te").unwrap_err();
        assert!(format!("{err}").contains("label 4"), "{err}");
    }

    #[test]
    fn read_pair_from_disk() {
        let dir = std::env::temp_dir();
        let train_path = dir.join("nadmm_libsvm_pair_train.txt");
        let test_path = dir.join("nadmm_libsvm_pair_test.txt");
        std::fs::write(&train_path, "1 1:1.0 3:0.5\n2 2:1.0\n").unwrap();
        std::fs::write(&test_path, "1 1:2.0\n").unwrap();
        let (train, test) = read_libsvm_pair(&train_path, &test_path).unwrap();
        assert_eq!(train.num_features(), 3);
        assert_eq!(test.num_features(), 3);
        std::fs::remove_file(&train_path).ok();
        std::fs::remove_file(&test_path).ok();
    }
}
