//! Labelled classification datasets.

use nadmm_linalg::{gen, DenseMatrix, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A labelled multiclass classification dataset.
///
/// Labels are class indices in `0..num_classes`. Following the paper's
/// parameterisation (§5), class `num_classes − 1` acts as the reference class
/// whose weight vector is pinned to zero, so the model has `(C−1)·p` degrees
/// of freedom.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
    name: String,
}

impl Dataset {
    /// Creates a dataset from a feature matrix and labels.
    ///
    /// # Panics
    /// Panics if the number of labels differs from the number of feature
    /// rows, if `num_classes < 2`, or if a label is out of range.
    pub fn new(name: impl Into<String>, features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "features/labels length mismatch");
        assert!(num_classes >= 2, "need at least two classes");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        Self {
            features,
            labels,
            num_classes,
            name: name.into(),
        }
    }

    /// Dataset name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The feature matrix (n × p).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The label vector (length n).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of samples n.
    pub fn num_samples(&self) -> usize {
        self.labels.len()
    }

    /// Number of features p.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes C.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Dimension of the optimisation variable, `(C−1)·p`.
    pub fn weight_dim(&self) -> usize {
        (self.num_classes - 1) * self.num_features()
    }

    /// Whether the feature matrix is stored sparsely.
    pub fn is_sparse(&self) -> bool {
        self.features.is_sparse()
    }

    /// Returns a new dataset containing rows `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Dataset {
        Dataset {
            features: self.features.slice_rows(start, end),
            labels: self.labels[start..end].to_vec(),
            num_classes: self.num_classes,
            name: format!("{}[{start}..{end}]", self.name),
        }
    }

    /// Returns a new dataset containing the rows selected by `indices`.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
            name: format!("{}[selected {}]", self.name, indices.len()),
        }
    }

    /// Randomly subsamples `k` rows without replacement.
    ///
    /// # Panics
    /// Panics if `k > num_samples()`.
    pub fn subsample(&self, k: usize, rng: &mut impl Rng) -> Dataset {
        let idx = gen::sample_without_replacement(self.num_samples(), k, rng);
        self.select(&idx)
    }

    /// Returns a shuffled copy of the dataset.
    pub fn shuffled(&self, rng: &mut impl Rng) -> Dataset {
        let perm = gen::permutation(self.num_samples(), rng);
        self.select(&perm)
    }

    /// Splits into `(train, test)` at `train_fraction` of the samples.
    ///
    /// # Panics
    /// Panics if the fraction is not in `(0, 1)`.
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0,1)"
        );
        let n_train = ((self.num_samples() as f64) * train_fraction).round() as usize;
        let n_train = n_train.clamp(1, self.num_samples() - 1);
        (self.slice(0, n_train), self.slice(n_train, self.num_samples()))
    }

    /// Standardises every feature column (zero mean, unit variance) for dense
    /// feature matrices; sparse matrices are left untouched (centering would
    /// destroy sparsity), matching standard practice for sparse text/genomics
    /// data.
    pub fn standardized(&self) -> Dataset {
        match &self.features {
            Matrix::Sparse(_) => self.clone(),
            Matrix::Dense(d) => {
                let means = d.col_means();
                let stds = d.col_stds();
                let mut out = d.clone();
                for i in 0..out.rows() {
                    let row = out.row_mut(i);
                    for (j, v) in row.iter_mut().enumerate() {
                        let s = if stds[j] > 1e-12 { stds[j] } else { 1.0 };
                        *v = (*v - means[j]) / s;
                    }
                }
                Dataset {
                    features: Matrix::Dense(out),
                    labels: self.labels.clone(),
                    num_classes: self.num_classes,
                    name: self.name.clone(),
                }
            }
        }
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes];
        for &l in &self.labels {
            h[l] += 1;
        }
        h
    }

    /// One-hot indicator matrix over the first `C−1` classes (the reference
    /// class row is all zeros), shape `n × (C−1)`. This is the `Y` matrix in
    /// the softmax gradient `G = (P − Y)ᵀ X`.
    pub fn one_hot_reduced(&self) -> DenseMatrix {
        let c1 = self.num_classes - 1;
        let mut y = DenseMatrix::zeros(self.num_samples(), c1);
        for (i, &l) in self.labels.iter().enumerate() {
            if l < c1 {
                y.set(i, l, 1.0);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_linalg::gen::seeded_rng;

    fn toy() -> Dataset {
        let x = DenseMatrix::from_vec(4, 2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        Dataset::new("toy", Matrix::Dense(x), vec![0, 1, 2, 0], 3)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.num_samples(), 4);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.weight_dim(), 4);
        assert!(!d.is_sparse());
        assert_eq!(d.class_histogram(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_is_rejected() {
        let x = DenseMatrix::zeros(1, 1);
        Dataset::new("bad", Matrix::Dense(x), vec![5], 3);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_is_rejected() {
        let x = DenseMatrix::zeros(2, 1);
        Dataset::new("bad", Matrix::Dense(x), vec![0], 2);
    }

    #[test]
    fn slicing_and_selection() {
        let d = toy();
        let s = d.slice(1, 3);
        assert_eq!(s.num_samples(), 2);
        assert_eq!(s.labels(), &[1, 2]);
        let sel = d.select(&[3, 0]);
        assert_eq!(sel.labels(), &[0, 0]);
        assert_eq!(sel.features().to_dense().get(0, 0), 6.0);
    }

    #[test]
    fn subsample_and_shuffle_preserve_population() {
        let d = toy();
        let mut rng = seeded_rng(1);
        let sub = d.subsample(2, &mut rng);
        assert_eq!(sub.num_samples(), 2);
        let sh = d.shuffled(&mut rng);
        assert_eq!(sh.num_samples(), 4);
        let mut h1 = d.class_histogram();
        let mut h2 = sh.class_histogram();
        h1.sort_unstable();
        h2.sort_unstable();
        assert_eq!(h1, h2);
    }

    #[test]
    fn split_fractions() {
        let d = toy();
        let (tr, te) = d.split(0.5);
        assert_eq!(tr.num_samples(), 2);
        assert_eq!(te.num_samples(), 2);
        let (tr, te) = d.split(0.9);
        assert_eq!(tr.num_samples() + te.num_samples(), 4);
        assert!(te.num_samples() >= 1);
    }

    #[test]
    fn standardization_centres_dense_columns() {
        let d = toy().standardized();
        if let Matrix::Dense(m) = d.features() {
            let means = m.col_means();
            for mval in means {
                assert!(mval.abs() < 1e-10);
            }
        } else {
            panic!("expected dense");
        }
    }

    #[test]
    fn one_hot_reduced_shape_and_content() {
        let d = toy();
        let y = d.one_hot_reduced();
        assert_eq!(y.rows(), 4);
        assert_eq!(y.cols(), 2);
        assert_eq!(y.get(0, 0), 1.0);
        assert_eq!(y.get(1, 1), 1.0);
        // Sample 2 has the reference class -> all zeros.
        assert_eq!(y.row(2), &[0.0, 0.0]);
    }
}
