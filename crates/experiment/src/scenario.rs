//! JSON scenario specs: a whole experiment in one committed file.
//!
//! A [`ScenarioSpec`] is the serializable mirror of an [`Experiment`]:
//! data + partition + cluster + solvers, plus a name for reporting. The
//! `scenario_runner` example executes one end-to-end
//! (`scenarios/smoke.json` is the CI-gated instance), and
//! [`ScenarioSpec::run`] is the library entry the example is built on.

use crate::experiment::{Experiment, ExperimentError};
use crate::report::{non_finite_path, to_finite_json_pretty, NonFiniteJsonError, RunReport};
use crate::spec::{ClusterSpec, DataSpec, PartitionSpec, SolverSpec};
use serde::{Deserialize, Serialize};

/// A complete, serializable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, used in reports and logs.
    pub name: String,
    /// Where the `(train, test)` datasets come from.
    pub data: DataSpec,
    /// How the training set is sharded across ranks.
    pub partition: PartitionSpec,
    /// The simulated cluster to run on.
    pub cluster: ClusterSpec,
    /// The solvers to compare, in run order.
    pub solvers: Vec<SolverSpec>,
}

impl ScenarioSpec {
    /// Serializes the scenario as pretty JSON. Non-finite hardware models
    /// (e.g. `NetworkModel::ideal()`'s infinite bandwidth) have no JSON
    /// form; they are a loud [`NonFiniteJsonError`] naming the field instead
    /// of `null` garbage that cannot be parsed back.
    pub fn to_json(&self) -> Result<String, NonFiniteJsonError> {
        to_finite_json_pretty(self)
    }

    /// Parses a scenario from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Validates the scenario: everything [`Experiment::validate`] checks,
    /// plus JSON-serializability — a *scenario* is an on-disk artifact, so
    /// non-finite hardware fields (fine for in-memory experiments) are
    /// rejected up front here.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        self.require_finite()?;
        self.to_experiment().validate()
    }

    /// The scenario-specific half of [`ScenarioSpec::validate`]: rejects
    /// fields JSON cannot represent.
    fn require_finite(&self) -> Result<(), ExperimentError> {
        if let Some(path) = non_finite_path(&serde::Serialize::to_value(self)) {
            return Err(ExperimentError::Config(nadmm_solver::ConfigError::new(
                "ScenarioSpec",
                path,
                "must be finite: scenario files serialize to JSON, which has no NaN/Infinity \
                 (use a finite fabric/device model instead of the ideal() presets)",
            )));
        }
        Ok(())
    }

    /// Converts the scenario into a runnable [`Experiment`].
    pub fn to_experiment(&self) -> Experiment {
        Experiment::new()
            .with_data_spec(self.data.clone())
            .with_partition(self.partition)
            .with_cluster(self.cluster.clone())
            .with_solvers(self.solvers.iter().cloned())
    }

    /// Validates and runs the scenario, returning one report per solver.
    /// (The experiment is built and validated once: only the finiteness
    /// check is scenario-specific, everything else happens inside
    /// [`Experiment::run`].)
    pub fn run(&self) -> Result<Vec<RunReport>, ExperimentError> {
        self.require_finite()?;
        self.to_experiment().run()
    }

    /// Validates and runs the scenario with this process as one rank of a
    /// transport-connected cluster (see
    /// [`Experiment::run_with_transport`]). Returns `Some(reports)` on
    /// rank 0 and `None` on every other rank.
    pub fn run_with_transport(
        &self,
        transport: Box<dyn nadmm_cluster::Transport>,
    ) -> Result<Option<Vec<RunReport>>, ExperimentError> {
        self.require_finite()?;
        self.to_experiment().run_with_transport(transport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::SyntheticConfig;
    use newton_admm::NewtonAdmmConfig;

    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit-tiny".into(),
            data: DataSpec::Synthetic {
                config: SyntheticConfig::mnist_like()
                    .with_train_size(40)
                    .with_test_size(10)
                    .with_num_features(5)
                    .with_num_classes(3),
                seed: 2,
            },
            partition: PartitionSpec::Strong,
            // A finite fabric: the infinite-bandwidth `ideal()` model has no
            // JSON form (infinity is not a JSON number).
            cluster: ClusterSpec::new(2, NetworkModel::infiniband_100g()),
            solvers: vec![SolverSpec::NewtonAdmm(
                NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3),
            )],
        }
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        let scenario = tiny_scenario();
        let back = ScenarioSpec::from_json(&scenario.to_json().unwrap()).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn a_parsed_scenario_runs_end_to_end() {
        let json = tiny_scenario().to_json().unwrap();
        let reports = ScenarioSpec::from_json(&json).unwrap().run().unwrap();
        assert_eq!(reports.len(), 1);
        reports[0].validate_schema().unwrap();
        // The runner annotates every report with the fleet's skew summary.
        let skew = reports[0].rank_skew.as_ref().expect("experiment runs carry rank skew");
        assert_eq!(skew.per_rank_compute_sec.len(), 2);
    }

    #[test]
    fn non_finite_hardware_is_rejected_up_front() {
        let mut scenario = tiny_scenario();
        scenario.cluster.network = NetworkModel::ideal();
        // Serialization names the field…
        let err = scenario.to_json().unwrap_err();
        assert_eq!(err.path, "cluster.network.bandwidth");
        // …and validation rejects it before any rank spawns.
        let err = scenario.validate().unwrap_err();
        match err {
            crate::ExperimentError::Config(e) => {
                assert_eq!(e.config, "ScenarioSpec");
                assert_eq!(e.field, "cluster.network.bandwidth");
            }
            other => panic!("expected a config error, got {other:?}"),
        }
        assert!(scenario.run().is_err());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ScenarioSpec::from_json("{\"name\": 3}").is_err());
        assert!(ScenarioSpec::from_json("not json at all").is_err());
    }
}
