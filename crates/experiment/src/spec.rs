//! Declarative experiment specs: data, partitioning, cluster, and solvers.
//!
//! Every spec type serializes to JSON through the serde shims, so a whole
//! experiment — which dataset, how it is sharded, what cluster it runs on,
//! and which solver configurations to compare — can live in a committed
//! scenario file (see `scenarios/smoke.json`) and be executed by the
//! `scenario_runner` example.

use crate::solver::{Aide, Solver};
use nadmm_baselines::{AideConfig, DaneConfig, Disco, DiscoConfig, Giant, GiantConfig, InexactDane, SyncSgd, SyncSgdConfig};
use nadmm_cluster::{Cluster, CollectiveSelector, Compression, NetworkModel, StragglerModel, TransportSpec};
use nadmm_data::{partition_strong, partition_weak, read_libsvm, read_libsvm_pair, Dataset, PartitionPlan, SyntheticConfig};
use nadmm_device::DeviceSpec;
use nadmm_solver::validate::{require_nonzero, require_positive, ConfigError};
use newton_admm::{NewtonAdmm, NewtonAdmmConfig};
use serde::{Deserialize, Serialize};

/// Where an experiment's `(train, test)` datasets come from.
///
/// In-memory datasets are supported through
/// [`Experiment::with_data`](crate::Experiment::with_data) rather than a
/// spec variant: a materialized dataset has no canonical JSON form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// Generate a synthetic dataset pair from a preset and a seed.
    Synthetic {
        /// The generator configuration (one of the paper's four analogues,
        /// possibly with overridden sizes).
        config: SyntheticConfig,
        /// RNG seed of the generator.
        seed: u64,
    },
    /// Read LIBSVM-format files from disk (the channel for the paper's real
    /// datasets when available).
    Libsvm {
        /// Path of the training file.
        train_path: String,
        /// Optional path of the test file.
        test_path: Option<String>,
    },
}

impl DataSpec {
    /// Short human-readable description of the source.
    pub fn describe(&self) -> String {
        match self {
            DataSpec::Synthetic { config, seed } => {
                format!("synthetic {} (seed {seed})", config.kind.paper_name())
            }
            DataSpec::Libsvm { train_path, .. } => format!("libsvm {train_path}"),
        }
    }

    /// Rejects empty sizes/paths before any generation or file IO happens.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            DataSpec::Synthetic { config, .. } => {
                require_nonzero("SyntheticConfig", "train_size", config.train_size)?;
                require_nonzero("SyntheticConfig", "num_features", config.num_features)?;
                require_nonzero("SyntheticConfig", "num_classes", config.num_classes)
            }
            DataSpec::Libsvm { train_path, .. } => {
                if train_path.is_empty() {
                    Err(ConfigError::new("DataSpec::Libsvm", "train_path", "must not be empty"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Materializes the datasets. The test set is `None` when the spec does
    /// not define one (`test_size == 0` / no test path).
    pub fn load(&self) -> Result<(Dataset, Option<Dataset>), crate::ExperimentError> {
        match self {
            DataSpec::Synthetic { config, seed } => {
                let (train, test) = config.generate(*seed);
                let test = (config.test_size > 0).then_some(test);
                Ok((train, test))
            }
            DataSpec::Libsvm { train_path, test_path } => match test_path {
                // A paired load parses both splits under one shared schema
                // (dims = union of the two files, label map = the train
                // split), so the two always agree dimensionally — per-file
                // inference used to let a sparse test split come out with
                // fewer features or a different label mapping.
                Some(p) => {
                    let (train, test) =
                        read_libsvm_pair(train_path, p).map_err(|e| crate::ExperimentError::Data(e.to_string()))?;
                    Ok((train, Some(test)))
                }
                None => {
                    let train = read_libsvm(train_path).map_err(|e| crate::ExperimentError::Data(e.to_string()))?;
                    Ok((train, None))
                }
            },
        }
    }
}

/// How the training set is split across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionSpec {
    /// Strong scaling: the whole dataset split evenly across the ranks.
    Strong,
    /// Weak scaling: every rank gets exactly `per_worker` samples.
    Weak {
        /// Samples per rank.
        per_worker: usize,
    },
}

impl PartitionSpec {
    /// Splits `data` into one shard per rank, returning an error (instead of
    /// panicking) when the dataset is too small for the requested layout.
    pub fn apply(&self, data: &Dataset, ranks: usize) -> Result<(Vec<Dataset>, PartitionPlan), crate::ExperimentError> {
        let n = data.num_samples();
        match self {
            PartitionSpec::Strong => {
                if ranks > n {
                    return Err(crate::ExperimentError::Partition(format!(
                        "cannot split {n} samples across {ranks} ranks"
                    )));
                }
                Ok(partition_strong(data, ranks))
            }
            PartitionSpec::Weak { per_worker } => {
                if *per_worker == 0 {
                    return Err(crate::ExperimentError::Partition("per_worker must be at least 1".into()));
                }
                let needed = ranks.checked_mul(*per_worker).ok_or_else(|| {
                    crate::ExperimentError::Partition(format!(
                        "weak scaling with {ranks} ranks × {per_worker} samples/worker overflows usize"
                    ))
                })?;
                if needed > n {
                    return Err(crate::ExperimentError::Partition(format!(
                        "weak scaling needs {needed} samples but the dataset has {n}"
                    )));
                }
                Ok(partition_weak(data, ranks, *per_worker))
            }
        }
    }
}

/// The simulated cluster an experiment runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of ranks (workers).
    pub ranks: usize,
    /// Interconnect cost model.
    pub network: NetworkModel,
    /// Collective-algorithm selection rule (`Auto` = payload-size crossover).
    pub collectives: CollectiveSelector,
    /// Wire compression of collective payloads (`None` = full-width `f64`,
    /// bit-identical to the uncompressed communicator). Scenario files
    /// written before this field existed simply omit it and get `None`.
    pub compression: Compression,
    /// Optional cluster-wide accelerator override: when set, it replaces the
    /// `device` field of every solver configuration in the experiment, so a
    /// scenario file states its hardware exactly once.
    pub device: Option<DeviceSpec>,
    /// Optional *per-rank* accelerator overrides (one entry per rank, in
    /// rank order): a heterogeneous fleet mixing device generations. Mutually
    /// exclusive with `device`.
    pub rank_devices: Option<Vec<DeviceSpec>>,
    /// Optional deterministic straggler model: per-rank multiplicative
    /// compute slowdowns (seeded jitter and/or designated slow ranks).
    pub straggler: Option<StragglerModel>,
    /// Transport backend the cluster's collectives run over: the in-process
    /// thread fabric (default; pre-transport scenario files decode to it) or
    /// TCP sockets with per-rank peer addresses. Reports are byte-identical
    /// across backends — billing is model-driven, never wall-clock.
    pub transport: TransportSpec,
}

impl ClusterSpec {
    /// A `ranks`-node cluster over `network` with automatic collective
    /// selection, per-solver device settings, and homogeneous rank speeds.
    pub fn new(ranks: usize, network: NetworkModel) -> Self {
        Self {
            ranks,
            network,
            collectives: CollectiveSelector::Auto,
            compression: Compression::None,
            device: None,
            rank_devices: None,
            straggler: None,
            transport: TransportSpec::default(),
        }
    }

    /// Builder-style override of the collective-selection rule.
    pub fn with_collectives(mut self, selector: CollectiveSelector) -> Self {
        self.collectives = selector;
        self
    }

    /// Builder-style override of the collective wire compression.
    pub fn with_compression(mut self, compression: Compression) -> Self {
        self.compression = compression;
        self
    }

    /// Builder-style cluster-wide accelerator override.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = Some(device);
        self
    }

    /// Builder-style per-rank accelerator overrides (one entry per rank).
    pub fn with_rank_devices(mut self, devices: impl IntoIterator<Item = DeviceSpec>) -> Self {
        self.rank_devices = Some(devices.into_iter().collect());
        self
    }

    /// Builder-style straggler model.
    pub fn with_straggler(mut self, model: StragglerModel) -> Self {
        self.straggler = Some(model);
        self
    }

    /// Builder-style transport backend override.
    pub fn with_transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// Rejects an empty cluster, a degenerate network model, malformed
    /// per-rank device lists, and invalid straggler models. An *infinite*
    /// bandwidth (the `ideal()` model) is valid for in-memory experiments,
    /// but note it has no JSON form — scenario files must use finite
    /// fabrics.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_nonzero("ClusterSpec", "ranks", self.ranks)?;
        if self.network.bandwidth.is_nan() || self.network.bandwidth <= 0.0 {
            return Err(ConfigError::new(
                "ClusterSpec",
                "network.bandwidth",
                format!("must be positive, got {}", self.network.bandwidth),
            ));
        }
        if !self.network.latency.is_finite() || self.network.latency < 0.0 {
            return Err(ConfigError::new(
                "ClusterSpec",
                "network.latency",
                format!("must be a non-negative finite number, got {}", self.network.latency),
            ));
        }
        if let Some(device) = &self.device {
            validate_device("ClusterSpec", device)?;
        }
        if let Some(devices) = &self.rank_devices {
            if self.device.is_some() {
                return Err(ConfigError::new(
                    "ClusterSpec",
                    "rank_devices",
                    "cannot combine a cluster-wide `device` override with per-rank `rank_devices`",
                ));
            }
            if devices.len() != self.ranks {
                return Err(ConfigError::new(
                    "ClusterSpec",
                    "rank_devices",
                    format!(
                        "need exactly one device per rank: got {} for {} ranks",
                        devices.len(),
                        self.ranks
                    ),
                ));
            }
            for device in devices {
                validate_device("ClusterSpec", device)?;
            }
        }
        if let Some(model) = &self.straggler {
            if let Err(msg) = model.validate(self.ranks) {
                return Err(ConfigError::new("ClusterSpec", "straggler", msg));
            }
        }
        if let Err(msg) = self.transport.validate(self.ranks) {
            return Err(ConfigError::new("ClusterSpec", "transport", msg));
        }
        Ok(())
    }

    /// Builds the simulated cluster (straggler model included).
    pub fn build(&self) -> Cluster {
        let cluster = Cluster::new(self.ranks, self.network)
            .with_collectives(self.collectives)
            .with_compression(self.compression);
        match &self.straggler {
            Some(model) => cluster.with_straggler(model),
            None => cluster,
        }
    }
}

impl Default for ClusterSpec {
    /// Four ranks on the paper's 100 Gbps Infiniband fabric.
    fn default() -> Self {
        Self::new(4, NetworkModel::infiniband_100g())
    }
}

/// Rejects degenerate accelerator models (negative/NaN latencies, zero
/// throughputs). Infinite *bandwidths* are permitted — `cpu_like()` models a
/// host executor with no PCIe hop — mirroring the network-model rule.
/// `DeviceSpec` lives below the validation layer, so the experiment crate
/// checks it wherever a spec can carry one (cluster override and every
/// solver config).
pub fn validate_device(config: &str, device: &DeviceSpec) -> Result<(), ConfigError> {
    let positive = [
        ("device.flops_per_sec", device.flops_per_sec),
        ("device.mem_bandwidth", device.mem_bandwidth),
        ("device.pcie_bandwidth", device.pcie_bandwidth),
    ];
    for (field, value) in positive {
        if value.is_nan() || value <= 0.0 {
            return Err(ConfigError::new(config, field, format!("must be positive, got {value}")));
        }
    }
    let latencies = [
        ("device.launch_latency", device.launch_latency),
        ("device.pcie_latency", device.pcie_latency),
    ];
    for (field, value) in latencies {
        if !value.is_finite() || value < 0.0 {
            return Err(ConfigError::new(
                config,
                field,
                format!("must be a non-negative finite number, got {value}"),
            ));
        }
    }
    Ok(())
}

/// A solver plus its full typed configuration — the unit an experiment
/// sweeps over. The AIDE acceleration and the SGD step-size grid search are
/// first-class variants, absorbing the old `run_cluster_aide` and
/// `run_cluster_best_of_grid` entry points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolverSpec {
    /// The paper's method.
    NewtonAdmm(NewtonAdmmConfig),
    /// GIANT (Wang et al.).
    Giant(GiantConfig),
    /// InexactDANE (Reddi et al.).
    InexactDane(DaneConfig),
    /// AIDE: catalyst-accelerated InexactDANE.
    Aide(AideConfig),
    /// DiSCO (Zhang & Lin).
    Disco(DiscoConfig),
    /// Synchronous minibatch SGD with a fixed step size.
    SyncSgd(SyncSgdConfig),
    /// The paper's SGD protocol: grid-search the step size, report the best
    /// run by final objective.
    SyncSgdGrid {
        /// Configuration shared by every candidate (its `step_size` is
        /// replaced by each grid value in turn).
        base: SyncSgdConfig,
        /// Candidate step sizes.
        grid: Vec<f64>,
    },
}

impl SolverSpec {
    /// The solver's stable name (matches `RunHistory::solver`).
    pub fn name(&self) -> &'static str {
        match self {
            SolverSpec::NewtonAdmm(_) => "newton-admm",
            SolverSpec::Giant(_) => "giant",
            SolverSpec::InexactDane(_) => "inexact-dane",
            SolverSpec::Aide(_) => "aide",
            SolverSpec::Disco(_) => "disco",
            SolverSpec::SyncSgd(_) => "sync-sgd",
            SolverSpec::SyncSgdGrid { .. } => "sync-sgd",
        }
    }

    /// Validates the embedded configuration — including its device model —
    /// and, for the grid variant, the grid itself.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            SolverSpec::NewtonAdmm(c) => {
                c.validate()?;
                validate_device("NewtonAdmmConfig", &c.device)
            }
            SolverSpec::Giant(c) => {
                c.validate()?;
                validate_device("GiantConfig", &c.device)
            }
            SolverSpec::InexactDane(c) => {
                c.validate()?;
                validate_device("DaneConfig", &c.device)
            }
            SolverSpec::Aide(c) => {
                c.validate()?;
                validate_device("DaneConfig", &c.dane.device)
            }
            SolverSpec::Disco(c) => {
                c.validate()?;
                validate_device("DiscoConfig", &c.device)
            }
            SolverSpec::SyncSgd(c) => {
                c.validate()?;
                validate_device("SyncSgdConfig", &c.device)
            }
            SolverSpec::SyncSgdGrid { base, grid } => {
                base.validate()?;
                validate_device("SyncSgdConfig", &base.device)?;
                if grid.is_empty() {
                    return Err(ConfigError::new("SolverSpec::SyncSgdGrid", "grid", "must not be empty"));
                }
                for &step in grid {
                    require_positive("SolverSpec::SyncSgdGrid", "grid", step)?;
                }
                Ok(())
            }
        }
    }

    /// Replaces the embedded configuration's device with the cluster-wide
    /// override.
    pub fn with_device(&self, device: DeviceSpec) -> Self {
        let mut spec = self.clone();
        match &mut spec {
            SolverSpec::NewtonAdmm(c) => c.device = device,
            SolverSpec::Giant(c) => c.device = device,
            SolverSpec::InexactDane(c) => c.device = device,
            SolverSpec::Aide(c) => c.dane.device = device,
            SolverSpec::Disco(c) => c.device = device,
            SolverSpec::SyncSgd(c) => c.device = device,
            SolverSpec::SyncSgdGrid { base, .. } => base.device = device,
        }
        spec
    }

    /// Instantiates the solver behind the [`Solver`] trait. Returns `None`
    /// for [`SolverSpec::SyncSgdGrid`], which is not a single per-rank run —
    /// the experiment runner resolves it into one run per grid candidate.
    pub fn build(&self) -> Option<Box<dyn Solver>> {
        match self {
            SolverSpec::NewtonAdmm(c) => Some(Box::new(NewtonAdmm::new(*c))),
            SolverSpec::Giant(c) => Some(Box::new(Giant::new(*c))),
            SolverSpec::InexactDane(c) => Some(Box::new(InexactDane::new(*c))),
            SolverSpec::Aide(c) => Some(Box::new(Aide::new(*c))),
            SolverSpec::Disco(c) => Some(Box::new(Disco::new(*c))),
            SolverSpec::SyncSgd(c) => Some(Box::new(SyncSgd::new(*c))),
            SolverSpec::SyncSgdGrid { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_buildable_spec_names_itself_consistently() {
        let specs = [
            SolverSpec::NewtonAdmm(NewtonAdmmConfig::default()),
            SolverSpec::Giant(GiantConfig::default()),
            SolverSpec::InexactDane(DaneConfig::default()),
            SolverSpec::Aide(AideConfig::default()),
            SolverSpec::Disco(DiscoConfig::default()),
            SolverSpec::SyncSgd(SyncSgdConfig::default()),
        ];
        for spec in specs {
            spec.validate().unwrap();
            let solver = spec.build().unwrap();
            assert_eq!(solver.name(), spec.name());
        }
    }

    #[test]
    fn the_grid_variant_is_resolved_by_the_runner_not_build() {
        let spec = SolverSpec::SyncSgdGrid {
            base: SyncSgdConfig::default(),
            grid: vec![0.1, 1.0],
        };
        spec.validate().unwrap();
        assert!(spec.build().is_none());
        assert_eq!(spec.name(), "sync-sgd");
    }

    #[test]
    fn grid_validation_rejects_empty_and_nonpositive_grids() {
        let base = SyncSgdConfig::default();
        assert!(SolverSpec::SyncSgdGrid { base, grid: vec![] }.validate().is_err());
        assert!(SolverSpec::SyncSgdGrid {
            base,
            grid: vec![0.1, -1.0]
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cluster_spec_builds_a_matching_cluster() {
        let spec = ClusterSpec::new(3, NetworkModel::ethernet_10g())
            .with_collectives(CollectiveSelector::Force(nadmm_cluster::CollectiveAlgorithm::Ring))
            .with_compression(Compression::F16);
        spec.validate().unwrap();
        let cluster = spec.build();
        assert_eq!(cluster.size(), 3);
        assert_eq!(cluster.network(), NetworkModel::ethernet_10g());
        assert_eq!(
            cluster.selector(),
            CollectiveSelector::Force(nadmm_cluster::CollectiveAlgorithm::Ring)
        );
        assert_eq!(cluster.compression(), Compression::F16);
        // The default spec stays on the bit-identical uncompressed path.
        assert_eq!(ClusterSpec::default().compression, Compression::None);
        assert_eq!(ClusterSpec::default().build().compression(), Compression::None);
    }

    #[test]
    fn cluster_device_override_rewrites_every_variant() {
        let slow = DeviceSpec::cpu_like();
        for spec in [
            SolverSpec::NewtonAdmm(NewtonAdmmConfig::default()),
            SolverSpec::Giant(GiantConfig::default()),
            SolverSpec::InexactDane(DaneConfig::default()),
            SolverSpec::Aide(AideConfig::default()),
            SolverSpec::Disco(DiscoConfig::default()),
            SolverSpec::SyncSgd(SyncSgdConfig::default()),
            SolverSpec::SyncSgdGrid {
                base: SyncSgdConfig::default(),
                grid: vec![0.1],
            },
        ] {
            let overridden = spec.with_device(slow);
            let device = match &overridden {
                SolverSpec::NewtonAdmm(c) => c.device,
                SolverSpec::Giant(c) => c.device,
                SolverSpec::InexactDane(c) => c.device,
                SolverSpec::Aide(c) => c.dane.device,
                SolverSpec::Disco(c) => c.device,
                SolverSpec::SyncSgd(c) => c.device,
                SolverSpec::SyncSgdGrid { base, .. } => base.device,
            };
            assert_eq!(device, slow);
        }
    }

    #[test]
    fn degenerate_device_models_are_rejected_before_running() {
        let bad_latency = DeviceSpec {
            launch_latency: -1e-3,
            ..DeviceSpec::tesla_p100()
        };
        let err = SolverSpec::NewtonAdmm(NewtonAdmmConfig {
            device: bad_latency,
            ..Default::default()
        })
        .validate()
        .unwrap_err();
        assert_eq!(err.field, "device.launch_latency");

        let nan_flops = DeviceSpec {
            flops_per_sec: f64::NAN,
            ..DeviceSpec::tesla_p100()
        };
        let err = ClusterSpec::default().with_device(nan_flops).validate().unwrap_err();
        assert_eq!(err.field, "device.flops_per_sec");

        // The infinite-PCIe host model stays valid (mirrors ideal networks).
        validate_device("test", &DeviceSpec::cpu_like()).unwrap();
    }

    #[test]
    fn heterogeneous_cluster_specs_validate_and_build() {
        let spec = ClusterSpec::new(2, NetworkModel::infiniband_100g())
            .with_rank_devices([DeviceSpec::tesla_p100(), DeviceSpec::tesla_v100()])
            .with_straggler(StragglerModel::jitter(0.2, 5).with_slow_rank(1, 4.0));
        spec.validate().unwrap();
        let cluster = spec.build();
        assert_eq!(cluster.rank_scale(0), StragglerModel::jitter(0.2, 5).scale_for(0));
        assert!(cluster.rank_scale(1) >= 4.0);

        // One device per rank, exactly.
        let bad = ClusterSpec::new(3, NetworkModel::infiniband_100g()).with_rank_devices([DeviceSpec::tesla_p100()]);
        assert_eq!(bad.validate().unwrap_err().field, "rank_devices");
        // Per-rank and cluster-wide overrides are mutually exclusive.
        let bad = ClusterSpec::new(1, NetworkModel::infiniband_100g())
            .with_device(DeviceSpec::tesla_p100())
            .with_rank_devices([DeviceSpec::tesla_v100()]);
        assert_eq!(bad.validate().unwrap_err().field, "rank_devices");
        // Degenerate per-rank devices are caught like every other device.
        let bad = ClusterSpec::new(1, NetworkModel::infiniband_100g()).with_rank_devices([DeviceSpec {
            flops_per_sec: f64::NAN,
            ..DeviceSpec::tesla_p100()
        }]);
        assert_eq!(bad.validate().unwrap_err().field, "device.flops_per_sec");
        // Straggler models are validated against the rank count.
        let bad =
            ClusterSpec::new(2, NetworkModel::infiniband_100g()).with_straggler(StragglerModel::none().with_slow_rank(7, 2.0));
        assert_eq!(bad.validate().unwrap_err().field, "straggler");
    }

    #[test]
    fn transport_specs_round_trip_and_validate_against_the_rank_count() {
        use serde::{Deserialize, Serialize};
        // TCP with one peer address per rank round-trips through the value
        // form scenario files serialize to.
        let spec = ClusterSpec::new(2, NetworkModel::infiniband_100g()).with_transport(TransportSpec::Tcp {
            peers: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
        });
        spec.validate().unwrap();
        let back = ClusterSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(back, spec);
        // Pre-transport scenario files simply omit the field and decode to
        // the thread fabric.
        let legacy = ClusterSpec::default();
        let mut value = legacy.to_value();
        if let serde::Value::Map(fields) = &mut value {
            fields.retain(|(k, _)| k != "transport");
        } else {
            panic!("ClusterSpec must serialize to a map");
        }
        let decoded = ClusterSpec::from_value(&value).unwrap();
        assert_eq!(decoded.transport, TransportSpec::Thread);
        assert_eq!(decoded, legacy);
        // Peer-list arity must match the rank count.
        let bad = ClusterSpec::new(3, NetworkModel::infiniband_100g()).with_transport(TransportSpec::Tcp {
            peers: vec!["127.0.0.1:7001".into()],
        });
        assert_eq!(bad.validate().unwrap_err().field, "transport");
        // Addresses without a port are rejected before any socket opens.
        let bad = ClusterSpec::new(1, NetworkModel::infiniband_100g()).with_transport(TransportSpec::Tcp {
            peers: vec!["localhost".into()],
        });
        assert_eq!(bad.validate().unwrap_err().field, "transport");
    }

    #[test]
    fn partition_spec_errors_instead_of_panicking() {
        let (train, _) = SyntheticConfig::mnist_like()
            .with_train_size(10)
            .with_test_size(2)
            .with_num_features(4)
            .generate(1);
        assert!(PartitionSpec::Strong.apply(&train, 11).is_err());
        assert!(PartitionSpec::Weak { per_worker: 6 }.apply(&train, 2).is_err());
        assert!(PartitionSpec::Weak { per_worker: 0 }.apply(&train, 2).is_err());
        let (shards, plan) = PartitionSpec::Weak { per_worker: 5 }.apply(&train, 2).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(plan.total_samples(), 10);
    }

    #[test]
    fn synthetic_data_spec_loads_and_honours_zero_test_size() {
        let spec = DataSpec::Synthetic {
            config: SyntheticConfig::higgs_like()
                .with_train_size(30)
                .with_test_size(0)
                .with_num_features(4),
            seed: 3,
        };
        spec.validate().unwrap();
        let (train, test) = spec.load().unwrap();
        assert_eq!(train.num_samples(), 30);
        assert!(test.is_none());
    }

    #[test]
    fn weak_partition_overflow_is_an_error_not_a_wrap() {
        let (train, _) = SyntheticConfig::mnist_like()
            .with_train_size(10)
            .with_test_size(0)
            .with_num_features(4)
            .generate(1);
        let err = PartitionSpec::Weak {
            per_worker: usize::MAX / 2,
        }
        .apply(&train, 3)
        .unwrap_err();
        assert!(format!("{err}").contains("overflows"), "{err}");
    }

    #[test]
    fn libsvm_pair_specs_load_with_a_shared_schema() {
        let dir = std::env::temp_dir();
        let train_path = dir.join("nadmm_spec_pair_train.svm");
        let test_path = dir.join("nadmm_spec_pair_test.svm");
        // The test split misses feature 4 and labels 1 and 2.
        std::fs::write(&train_path, "1 1:0.5 4:1.0\n2 2:2.0\n3 3:0.25\n").unwrap();
        std::fs::write(&test_path, "3 1:1.0\n3 2:0.5\n").unwrap();
        let spec = DataSpec::Libsvm {
            train_path: train_path.to_string_lossy().into_owned(),
            test_path: Some(test_path.to_string_lossy().into_owned()),
        };
        let (train, test) = spec.load().unwrap();
        let test = test.unwrap();
        assert_eq!(train.num_features(), test.num_features());
        assert_eq!(train.num_classes(), test.num_classes());
        assert_eq!(test.labels(), &[2, 2]);
        std::fs::remove_file(&train_path).ok();
        std::fs::remove_file(&test_path).ok();
    }

    #[test]
    fn libsvm_data_spec_surfaces_io_errors() {
        let spec = DataSpec::Libsvm {
            train_path: "/nonexistent/file.svm".into(),
            test_path: None,
        };
        assert!(spec.load().is_err());
    }
}
