//! The [`Experiment`] builder: declaratively compose data, partitioning,
//! cluster, and solvers, then run everything through one code path.

use crate::report::{RankSkew, RunReport};
use crate::solver::{run_rank_solvers_on, run_solver_on, Solver};
use crate::spec::{ClusterSpec, DataSpec, PartitionSpec, SolverSpec};
use nadmm_baselines::SyncSgdConfig;
use nadmm_cluster::{Cluster, Communicator, Transport};
use nadmm_data::Dataset;
use nadmm_device::DeviceSpec;
use nadmm_solver::ConfigError;

/// Why an experiment could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// A solver/cluster/data configuration failed validation.
    Config(ConfigError),
    /// The data source could not be materialized (IO/parse failure).
    Data(String),
    /// The dataset cannot be partitioned as requested.
    Partition(String),
    /// The experiment has no solvers to run.
    NoSolvers,
    /// Every candidate of an SGD step-size grid diverged.
    GridDiverged,
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::Config(e) => write!(f, "{e}"),
            ExperimentError::Data(msg) => write!(f, "data source failed: {msg}"),
            ExperimentError::Partition(msg) => write!(f, "partitioning failed: {msg}"),
            ExperimentError::NoSolvers => write!(f, "experiment has no solvers"),
            ExperimentError::GridDiverged => {
                write!(f, "no SGD grid candidate produced a finite objective")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ConfigError> for ExperimentError {
    fn from(e: ConfigError) -> Self {
        ExperimentError::Config(e)
    }
}

/// The experiment's data source: a declarative spec or materialized
/// in-memory datasets. One instance exists per experiment, so the size gap
/// between a spec and a whole dataset is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum DataSource {
    Spec(DataSpec),
    InMemory { train: Dataset, test: Option<Dataset> },
}

/// A declarative experiment: one dataset, one partitioning, one cluster,
/// and any number of solvers to run on it.
///
/// ```
/// use nadmm_experiment::{ClusterSpec, DataSpec, Experiment, PartitionSpec, SolverSpec};
/// use nadmm_cluster::NetworkModel;
/// use nadmm_data::SyntheticConfig;
/// use newton_admm::NewtonAdmmConfig;
///
/// let reports = Experiment::new()
///     .with_data_spec(DataSpec::Synthetic {
///         config: SyntheticConfig::mnist_like()
///             .with_train_size(80)
///             .with_test_size(20)
///             .with_num_features(8),
///         seed: 1,
///     })
///     .with_partition(PartitionSpec::Strong)
///     .with_cluster(ClusterSpec::new(2, NetworkModel::infiniband_100g()))
///     .with_solver(SolverSpec::NewtonAdmm(
///         NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3),
///     ))
///     .run()
///     .unwrap();
/// assert_eq!(reports.len(), 1);
/// assert!(reports[0].final_objective.unwrap().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    data: Option<DataSource>,
    partition: PartitionSpec,
    cluster: ClusterSpec,
    solvers: Vec<SolverSpec>,
}

impl Experiment {
    /// An empty experiment: strong partitioning on the default 4-rank
    /// Infiniband cluster, no data, no solvers.
    pub fn new() -> Self {
        Self {
            data: None,
            partition: PartitionSpec::Strong,
            cluster: ClusterSpec::default(),
            solvers: Vec::new(),
        }
    }

    /// Sets a declarative data source (synthetic preset or LIBSVM paths).
    pub fn with_data_spec(mut self, spec: DataSpec) -> Self {
        self.data = Some(DataSource::Spec(spec));
        self
    }

    /// Sets materialized in-memory datasets (no JSON form; scenario files
    /// must use [`Experiment::with_data_spec`] sources instead).
    pub fn with_data(mut self, train: Dataset, test: Option<Dataset>) -> Self {
        self.data = Some(DataSource::InMemory { train, test });
        self
    }

    /// Sets the partitioning rule (strong by default).
    pub fn with_partition(mut self, partition: PartitionSpec) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the cluster spec (4 ranks on Infiniband by default).
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Appends one solver to the run list.
    pub fn with_solver(mut self, solver: SolverSpec) -> Self {
        self.solvers.push(solver);
        self
    }

    /// Appends several solvers to the run list.
    pub fn with_solvers(mut self, solvers: impl IntoIterator<Item = SolverSpec>) -> Self {
        self.solvers.extend(solvers);
        self
    }

    /// The solvers queued so far.
    pub fn solvers(&self) -> &[SolverSpec] {
        &self.solvers
    }

    /// Validates every spec without materializing data or spawning ranks.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if self.solvers.is_empty() {
            return Err(ExperimentError::NoSolvers);
        }
        self.cluster.validate()?;
        if let Some(DataSource::Spec(spec)) = &self.data {
            spec.validate()?;
        }
        for solver in &self.solvers {
            solver.validate()?;
            // Cross-spec check only the experiment can do: fault injection
            // must name a rank that exists on this cluster.
            if let SolverSpec::NewtonAdmm(c) = solver {
                if let Some(dropout) = c.dropout {
                    if dropout.rank >= self.cluster.ranks {
                        return Err(ConfigError::new(
                            "NewtonAdmmConfig",
                            "dropout.rank",
                            format!(
                                "names rank {} but the cluster has only {} ranks",
                                dropout.rank, self.cluster.ranks
                            ),
                        )
                        .into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs every solver on the shared problem instance and returns one
    /// report per solver, in the order they were added.
    ///
    /// The pipeline is: validate all specs → materialize the data →
    /// partition into one shard per rank → spawn the simulated cluster once
    /// per solver run. A grid spec contributes one *report* (its best
    /// candidate) but runs the cluster once per candidate.
    pub fn run(&self) -> Result<Vec<RunReport>, ExperimentError> {
        self.validate()?;
        let loaded;
        let (train, test): (&Dataset, Option<&Dataset>) = match &self.data {
            None => return Err(ExperimentError::Data("no data source configured".into())),
            Some(DataSource::InMemory { train, test }) => (train, test.as_ref()),
            Some(DataSource::Spec(spec)) => {
                loaded = spec.load()?;
                (&loaded.0, loaded.1.as_ref())
            }
        };
        let (shards, _plan) = self.partition.apply(train, self.cluster.ranks)?;
        let cluster = self.cluster.build();
        let rank_devices = self.cluster.rank_devices.as_deref();
        let mut reports = Vec::with_capacity(self.solvers.len());
        for spec in &self.solvers {
            let spec = match self.cluster.device {
                Some(device) => spec.with_device(device),
                None => spec.clone(),
            };
            reports.push(run_spec_on(&cluster, &spec, &shards, test, rank_devices)?);
        }
        Ok(reports)
    }

    /// Runs every solver with this process acting as **one rank** of a
    /// cluster connected over `transport` (e.g. TCP sockets to peer
    /// processes started by the launcher). Every rank loads and partitions
    /// the same data identically and keeps its own shard; collectives run
    /// over the transport against the same simulated cost models as
    /// [`Experiment::run`], so the reports are byte-identical to the
    /// thread-backed ones. Returns `Some(reports)` on rank 0 — the rank
    /// that gathers every peer's communication counters for the skew
    /// summary — and `None` on every other rank.
    pub fn run_with_transport(&self, mut transport: Box<dyn Transport>) -> Result<Option<Vec<RunReport>>, ExperimentError> {
        self.validate()?;
        if transport.size() != self.cluster.ranks {
            return Err(ConfigError::new(
                "ClusterSpec",
                "transport",
                format!(
                    "connects {} ranks but the cluster declares {}",
                    transport.size(),
                    self.cluster.ranks
                ),
            )
            .into());
        }
        let loaded;
        let (train, test): (&Dataset, Option<&Dataset>) = match &self.data {
            None => return Err(ExperimentError::Data("no data source configured".into())),
            Some(DataSource::InMemory { train, test }) => (train, test.as_ref()),
            Some(DataSource::Spec(spec)) => {
                loaded = spec.load()?;
                (&loaded.0, loaded.1.as_ref())
            }
        };
        let (shards, _plan) = self.partition.apply(train, self.cluster.ranks)?;
        let rank = transport.rank();
        let shard = &shards[rank];
        let cluster = self.cluster.build();
        let rank_devices = self.cluster.rank_devices.as_deref();
        let root = rank == 0;
        let mut reports = Vec::with_capacity(self.solvers.len());
        for spec in &self.solvers {
            let spec = match self.cluster.device {
                Some(device) => spec.with_device(device),
                None => spec.clone(),
            };
            let (report, reclaimed) = run_spec_over(&cluster, &spec, shard, test, rank_devices, transport)?;
            transport = reclaimed;
            if root {
                reports.push(report.expect("rank 0 gathers every report"));
            }
        }
        Ok(root.then_some(reports))
    }
}

impl Default for Experiment {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs one solver spec on a cluster: a single run for ordinary specs, one
/// run per candidate (keeping the best by final objective) for the SGD grid.
/// With `rank_devices` set, every run instantiates one solver per rank so
/// rank `i` computes on `rank_devices[i]` (a heterogeneous fleet).
pub fn run_spec_on(
    cluster: &Cluster,
    spec: &SolverSpec,
    shards: &[Dataset],
    test: Option<&Dataset>,
    rank_devices: Option<&[DeviceSpec]>,
) -> Result<RunReport, ExperimentError> {
    let run_one = |spec: &SolverSpec| -> RunReport {
        match rank_devices {
            None => {
                let solver = spec.build().expect("every non-grid spec builds a solver");
                run_solver_on(cluster, solver.as_ref(), shards, test)
            }
            Some(devices) => {
                let solvers: Vec<Box<dyn Solver>> = devices
                    .iter()
                    .map(|d| spec.with_device(*d).build().expect("every non-grid spec builds a solver"))
                    .collect();
                run_rank_solvers_on(cluster, &solvers, shards, test)
            }
        }
    };
    match spec {
        SolverSpec::SyncSgdGrid { base, grid } => {
            let mut best: Option<RunReport> = None;
            for &step in grid {
                let candidate = SolverSpec::SyncSgd(SyncSgdConfig {
                    step_size: step,
                    ..*base
                });
                let report = run_one(&candidate);
                let objective = report.final_objective.unwrap_or(f64::INFINITY);
                let is_better = best
                    .as_ref()
                    .and_then(|b| b.final_objective)
                    .map(|b| objective < b)
                    .unwrap_or(true);
                if objective.is_finite() && is_better {
                    best = Some(report);
                }
            }
            best.ok_or(ExperimentError::GridDiverged)
        }
        other => Ok(run_one(other)),
    }
}

/// One-rank counterpart of [`run_spec_on`]: runs one solver spec over an
/// external transport, reclaiming the transport between candidate runs so a
/// single connection serves the whole experiment. Rank 0 receives every
/// peer's communication counters through the transport's stats side channel
/// and annotates its own report with the fleet's [`RankSkew`] — exactly the
/// scaffolding [`run_solver_on`] applies to thread-backed runs. Returns
/// `(Some(report), transport)` on rank 0 and `(None, transport)` elsewhere.
pub fn run_spec_over(
    cluster: &Cluster,
    spec: &SolverSpec,
    shard: &Dataset,
    test: Option<&Dataset>,
    rank_devices: Option<&[DeviceSpec]>,
    transport: Box<dyn Transport>,
) -> Result<(Option<RunReport>, Box<dyn Transport>), ExperimentError> {
    match spec {
        SolverSpec::SyncSgdGrid { base, grid } => {
            // Every rank runs every candidate (the collectives need the
            // whole fleet), but only rank 0 holds reports to select among —
            // the same best-by-final-objective arithmetic as the
            // thread-backed grid.
            let root = transport.rank() == 0;
            let mut reclaimed = transport;
            let mut best: Option<RunReport> = None;
            for &step in grid {
                let candidate = SolverSpec::SyncSgd(SyncSgdConfig {
                    step_size: step,
                    ..*base
                });
                let (report, back) = run_candidate_over(cluster, &candidate, shard, test, rank_devices, reclaimed);
                reclaimed = back;
                if let Some(report) = report {
                    let objective = report.final_objective.unwrap_or(f64::INFINITY);
                    let is_better = best
                        .as_ref()
                        .and_then(|b| b.final_objective)
                        .map(|b| objective < b)
                        .unwrap_or(true);
                    if objective.is_finite() && is_better {
                        best = Some(report);
                    }
                }
            }
            if root {
                Ok((Some(best.ok_or(ExperimentError::GridDiverged)?), reclaimed))
            } else {
                Ok((None, reclaimed))
            }
        }
        other => Ok(run_candidate_over(cluster, other, shard, test, rank_devices, transport)),
    }
}

/// Runs one non-grid candidate over the transport: connect a fresh
/// communicator (fresh clocks and counters, like each `run_sharded` spawn),
/// run the solver, gather the fleet's counters at rank 0, and hand the
/// transport back for the next run.
fn run_candidate_over(
    cluster: &Cluster,
    spec: &SolverSpec,
    shard: &Dataset,
    test: Option<&Dataset>,
    rank_devices: Option<&[DeviceSpec]>,
    transport: Box<dyn Transport>,
) -> (Option<RunReport>, Box<dyn Transport>) {
    let mut comm = cluster.connect(transport);
    let solver = match rank_devices {
        None => spec.build().expect("every non-grid spec builds a solver"),
        Some(devices) => spec
            .with_device(devices[comm.rank()])
            .build()
            .expect("every non-grid spec builds a solver"),
    };
    let report = solver.run(&mut comm, shard, test);
    let gathered = comm.gather_comm_stats();
    let transport = comm.into_transport();
    let master = gathered.map(|stats| {
        let mut master = report;
        master.rank_skew = Some(RankSkew::from_rank_stats(&stats));
        master
    });
    (master, transport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::SyntheticConfig;
    use newton_admm::NewtonAdmmConfig;

    fn tiny_data_spec() -> DataSpec {
        DataSpec::Synthetic {
            config: SyntheticConfig::mnist_like()
                .with_train_size(60)
                .with_test_size(20)
                .with_num_features(6)
                .with_num_classes(3),
            seed: 7,
        }
    }

    #[test]
    fn an_experiment_runs_multiple_solvers_in_order() {
        let reports = Experiment::new()
            .with_data_spec(tiny_data_spec())
            .with_cluster(ClusterSpec::new(2, NetworkModel::ideal()))
            .with_solver(SolverSpec::NewtonAdmm(
                NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3),
            ))
            .with_solver(SolverSpec::Giant(nadmm_baselines::GiantConfig {
                max_iters: 2,
                lambda: 1e-3,
                ..Default::default()
            }))
            .run()
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].solver, "newton-admm");
        assert_eq!(reports[1].solver, "giant");
        for r in &reports {
            r.validate_schema().unwrap();
            assert_eq!(r.num_workers, 2);
            assert!(r.final_accuracy.is_some(), "test set must flow into instrumentation");
        }
    }

    #[test]
    fn validation_happens_before_any_rank_spawns() {
        let err = Experiment::new()
            .with_data_spec(tiny_data_spec())
            .with_solver(SolverSpec::NewtonAdmm(NewtonAdmmConfig {
                rho0: 0.0,
                ..Default::default()
            }))
            .run()
            .unwrap_err();
        match err {
            ExperimentError::Config(e) => assert_eq!(e.field, "rho0"),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn missing_pieces_are_reported() {
        assert_eq!(Experiment::new().run().unwrap_err(), ExperimentError::NoSolvers);
        let err = Experiment::new()
            .with_solver(SolverSpec::NewtonAdmm(NewtonAdmmConfig::default()))
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Data(_)));
    }

    #[test]
    fn partition_errors_surface_instead_of_panicking() {
        let err = Experiment::new()
            .with_data_spec(tiny_data_spec())
            .with_cluster(ClusterSpec::new(61, NetworkModel::ideal()))
            .with_solver(SolverSpec::NewtonAdmm(
                NewtonAdmmConfig::default().with_max_iters(1).with_lambda(1e-3),
            ))
            .run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::Partition(_)));
    }

    #[test]
    fn the_grid_spec_reports_its_best_candidate() {
        let base = SyncSgdConfig {
            epochs: 3,
            lambda: 1e-3,
            batch_size: 10,
            ..Default::default()
        };
        let reports = Experiment::new()
            .with_data_spec(tiny_data_spec())
            .with_cluster(ClusterSpec::new(2, NetworkModel::ideal()))
            .with_solver(SolverSpec::SyncSgdGrid {
                base,
                grid: vec![1e-7, 0.5],
            })
            .run()
            .unwrap();
        assert_eq!(reports.len(), 1, "a grid contributes one report");
        let grid_best = reports[0].final_objective.unwrap();
        // The tiny step barely moves; the grid must have picked the better one.
        let tiny = Experiment::new()
            .with_data_spec(tiny_data_spec())
            .with_cluster(ClusterSpec::new(2, NetworkModel::ideal()))
            .with_solver(SolverSpec::SyncSgd(SyncSgdConfig { step_size: 1e-7, ..base }))
            .run()
            .unwrap();
        assert!(grid_best <= tiny[0].final_objective.unwrap() + 1e-12);
    }

    #[test]
    fn per_rank_devices_make_the_fleet_heterogeneous() {
        use nadmm_device::DeviceSpec;
        let cfg = NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3);
        let run_with = |cluster: ClusterSpec| {
            Experiment::new()
                .with_data_spec(tiny_data_spec())
                .with_cluster(cluster)
                .with_solver(SolverSpec::NewtonAdmm(cfg))
                .run()
                .unwrap()
                .remove(0)
        };
        let homogeneous = run_with(ClusterSpec::new(2, NetworkModel::infiniband_100g()));
        let hetero = run_with(
            ClusterSpec::new(2, NetworkModel::infiniband_100g())
                .with_rank_devices([DeviceSpec::tesla_p100(), DeviceSpec::cpu_like()]),
        );
        // The math is device-independent…
        assert_eq!(homogeneous.final_w, hetero.final_w);
        // …but the slow rank shows up in the fleet's skew summary.
        // (Identical devices still show a little imbalance — different
        // shards converge differently — but mixing a CPU in dwarfs it.)
        let homo_skew = homogeneous.rank_skew.as_ref().unwrap();
        let hetero_skew = hetero.rank_skew.as_ref().unwrap();
        assert!(
            hetero_skew.compute_imbalance() > 2.0 * homo_skew.compute_imbalance(),
            "a cpu-like rank should be far slower than a P100 rank: imbalance {} vs homogeneous {}",
            hetero_skew.compute_imbalance(),
            homo_skew.compute_imbalance()
        );
        assert!(
            hetero_skew.max_idle_wait_sec > 0.0,
            "the fast rank must wait for the slow one"
        );
        // Direct plumbing proof: rank 1's device changed, so its simulated
        // compute time changed. (The *fleet* time need not: it is governed
        // by the slowest rank, the P100 in both runs.)
        assert_ne!(hetero_skew.per_rank_compute_sec[1], homo_skew.per_rank_compute_sec[1]);
        assert_eq!(hetero_skew.per_rank_compute_sec[0], homo_skew.per_rank_compute_sec[0]);
    }

    #[test]
    fn straggled_experiments_slow_the_whole_fleet_deterministically() {
        use nadmm_cluster::StragglerModel;
        let cfg = NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3);
        let run_with = |cluster: ClusterSpec| {
            Experiment::new()
                .with_data_spec(tiny_data_spec())
                .with_cluster(cluster)
                .with_solver(SolverSpec::NewtonAdmm(cfg))
                .run()
                .unwrap()
                .remove(0)
        };
        let base = run_with(ClusterSpec::new(2, NetworkModel::infiniband_100g()));
        let spec =
            ClusterSpec::new(2, NetworkModel::infiniband_100g()).with_straggler(StragglerModel::none().with_slow_rank(1, 4.0));
        let slow_a = run_with(spec.clone());
        let slow_b = run_with(spec);
        assert_eq!(base.final_w, slow_a.final_w, "stragglers change time, never math");
        assert!(slow_a.total_sim_time_sec > base.total_sim_time_sec);
        assert_eq!(
            slow_a.total_sim_time_sec.to_bits(),
            slow_b.total_sim_time_sec.to_bits(),
            "same seed, same fleet, same simulated times"
        );
        assert_eq!(slow_a.rank_skew, slow_b.rank_skew);
    }

    #[test]
    fn cluster_device_override_reaches_the_simulated_clocks() {
        let cfg = NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3);
        let run_with = |cluster: ClusterSpec| {
            Experiment::new()
                .with_data_spec(tiny_data_spec())
                .with_cluster(cluster)
                .with_solver(SolverSpec::NewtonAdmm(cfg))
                .run()
                .unwrap()
                .remove(0)
        };
        let p100 = run_with(ClusterSpec::new(2, NetworkModel::ideal()));
        let cpu = run_with(ClusterSpec::new(2, NetworkModel::ideal()).with_device(nadmm_device::DeviceSpec::cpu_like()));
        // On this tiny problem the P100's kernel-launch latency dominates, so
        // the exact ordering is not the point — the override must reach the
        // simulated clocks at all.
        assert_ne!(
            p100.total_sim_time_sec, cpu.total_sim_time_sec,
            "the device override must change the simulated time"
        );
        // The math is device-independent: identical iterates.
        assert_eq!(p100.final_w, cpu.final_w);
    }
}
