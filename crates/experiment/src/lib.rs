//! # nadmm-experiment
//!
//! The unified experiment API of the Newton-ADMM reproduction.
//!
//! The paper's headline results are a *matrix* of runs — {Newton-ADMM,
//! GIANT, InexactDANE/AIDE, DiSCO, synchronous SGD} × {datasets} × {worker
//! counts} × {λ, CG budgets} — and this crate is the one place that matrix
//! is expressed:
//!
//! * [`Solver`] — the object-safe trait every distributed solver implements
//!   (`name`, `validate`, per-rank `run` returning a [`RunReport`]);
//! * [`SolverSpec`] — a solver plus its full typed configuration, with AIDE
//!   acceleration and the SGD step-size grid as first-class variants;
//! * [`DataSpec`] / [`PartitionSpec`] / [`ClusterSpec`] — declarative
//!   problem-instance descriptions (synthetic preset or LIBSVM path,
//!   strong/weak sharding, ranks + network + collective algorithm + optional
//!   cluster-wide device override);
//! * [`Experiment`] — the builder composing all of the above, owning the
//!   one copy of the spawn-ranks/hand-off-shards/collect scaffolding;
//! * [`ScenarioSpec`] — the JSON-serializable mirror of an experiment,
//!   executed end-to-end by the `scenario_runner` example and gated in CI
//!   via `scenarios/smoke.json`;
//! * [`RunReport`] — the structured result of every run: iteration records,
//!   final objective/accuracy, per-collective [`CommStats`] breakdown,
//!   workspace-pool counters, simulated and wall time; serializes to JSON.
//!
//! Every run through this layer is bit-identical to the superseded
//! per-solver `run_cluster` entry points (proven by the equivalence tests in
//! `tests/equivalence.rs`): the experiment layer adds validation, uniform
//! reporting and declarative composition, not new numerics.

pub mod experiment;
pub mod report;
pub mod scenario;
pub mod solver;
pub mod spec;

pub use experiment::{run_spec_on, run_spec_over, Experiment, ExperimentError};
pub use report::{non_finite_path, to_finite_json_pretty, NonFiniteJsonError, RankSkew, RunReport};
pub use scenario::ScenarioSpec;
pub use solver::{run_rank_solvers_on, run_solver_on, Aide, Solver};
pub use spec::{validate_device, ClusterSpec, DataSpec, PartitionSpec, SolverSpec};

// Re-exported so downstream users of the experiment API can name the shared
// validation error without depending on nadmm-solver directly.
pub use nadmm_cluster::CommStats;
pub use nadmm_solver::ConfigError;
