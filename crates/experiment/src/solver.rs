//! The object-safe [`Solver`] trait unifying Newton-ADMM and the baselines.
//!
//! Every distributed solver of the workspace runs behind this one interface:
//! `run` executes the solver inside one rank of a communicator (every rank
//! calls it with its own shard, exactly like the underlying
//! `run_distributed` methods) and returns a structured [`RunReport`]. The
//! experiment layer owns the rank spawning ([`crate::run_solver_on`]), so
//! the per-solver `run_cluster` wrappers are no longer needed.

use crate::report::{RankSkew, RunReport};
use nadmm_baselines::{AideConfig, Disco, Giant, InexactDane, SyncSgd};
use nadmm_cluster::{Cluster, CommStats, Communicator};
use nadmm_data::Dataset;
use nadmm_solver::ConfigError;
use newton_admm::NewtonAdmm;

/// A distributed solver that can run inside one rank of a communicator.
///
/// The trait is object-safe and `Send + Sync`, so `Box<dyn Solver>` values
/// can be handed to every rank thread of a simulated cluster.
pub trait Solver: Send + Sync {
    /// Stable solver name, matching the `solver` field of its run histories
    /// (e.g. `"newton-admm"`, `"giant"`).
    fn name(&self) -> &str;

    /// Validates the solver's configuration without running anything.
    fn validate(&self) -> Result<(), ConfigError>;

    /// Runs the solver inside one rank. Every rank of the communicator must
    /// call this with its own `shard`; `test` is optional instrumentation
    /// (per-iteration test accuracy, evaluated at the root).
    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport;
}

/// Runs a solver on every rank of a cluster (one shard per rank) and returns
/// the master rank's report, annotated with the fleet's per-rank skew
/// summary. This is the single copy of the spawn/hand-off/collect
/// scaffolding that used to be duplicated across the five `run_cluster`
/// wrappers.
///
/// # Panics
/// Panics if the shard count does not match the cluster size.
pub fn run_solver_on(cluster: &Cluster, solver: &dyn Solver, shards: &[Dataset], test: Option<&Dataset>) -> RunReport {
    let outputs = cluster.run_sharded(shards, |comm, shard| {
        nadmm_trace::install(comm.rank());
        let report = solver.run(comm, shard, test);
        (report, nadmm_trace::uninstall())
    });
    let (reports, traces): (Vec<_>, Vec<_>) = outputs.into_iter().unzip();
    let mut master = master_with_skew(reports);
    attach_trace(&mut master, solver.name(), traces);
    master
}

/// Runs one solver *instance per rank* — a heterogeneous fleet where each
/// rank's solver carries its own `DeviceSpec` — and returns the master's
/// skew-annotated report. All instances must implement the same algorithm;
/// only hardware models may differ.
///
/// # Panics
/// Panics if the solver or shard counts do not match the cluster size.
pub fn run_rank_solvers_on(
    cluster: &Cluster,
    solvers: &[Box<dyn Solver>],
    shards: &[Dataset],
    test: Option<&Dataset>,
) -> RunReport {
    assert_eq!(solvers.len(), cluster.size(), "need exactly one solver instance per rank");
    let outputs = cluster.run_sharded(shards, |comm, shard| {
        nadmm_trace::install(comm.rank());
        let report = solvers[comm.rank()].run(comm, shard, test);
        (report, nadmm_trace::uninstall())
    });
    let (reports, traces): (Vec<_>, Vec<_>) = outputs.into_iter().unzip();
    let mut master = master_with_skew(reports);
    attach_trace(&mut master, solvers[0].name(), traces);
    master
}

/// Keeps the master rank's report and folds every rank's communication
/// counters into its [`RankSkew`] summary.
fn master_with_skew(mut reports: Vec<RunReport>) -> RunReport {
    let stats: Vec<CommStats> = reports.iter().map(|r| r.comm_stats).collect();
    let mut master = reports.swap_remove(0);
    master.rank_skew = Some(RankSkew::from_rank_stats(&stats));
    master
}

/// When tracing is enabled, folds the per-rank recorder outputs into the
/// master report's flat profile and deposits the raw spans in the process
/// sink (one lane per solver run) for the Chrome export. A no-op — and the
/// report stays byte-identical — when tracing is off: `traces` is then all
/// `None` because `nadmm_trace::install` never armed a recorder.
fn attach_trace(master: &mut RunReport, label: &str, traces: Vec<Option<nadmm_trace::RankTrace>>) {
    let ranks: Vec<nadmm_trace::RankTrace> = traces.into_iter().flatten().collect();
    if ranks.is_empty() {
        return;
    }
    master.trace_profile = Some(nadmm_trace::profile_from_ranks(&ranks));
    nadmm_trace::sink_deposit(label, ranks);
}

impl Solver for NewtonAdmm {
    fn name(&self) -> &str {
        "newton-admm"
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.config().validate()
    }

    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport {
        let out = self.run_distributed(comm, shard, test);
        RunReport::from_parts(out.history, out.comm_stats, out.workspace, out.z, Some(out.final_rho))
    }
}

impl Solver for Giant {
    fn name(&self) -> &str {
        "giant"
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.config().validate()
    }

    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport {
        let out = self.run_distributed(comm, shard, test);
        RunReport::from_parts(out.history, out.comm_stats, out.workspace, out.w, None)
    }
}

impl Solver for InexactDane {
    fn name(&self) -> &str {
        "inexact-dane"
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.config().validate()
    }

    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport {
        let out = self.run_distributed(comm, shard, test);
        RunReport::from_parts(out.history, out.comm_stats, out.workspace, out.w, None)
    }
}

impl Solver for Disco {
    fn name(&self) -> &str {
        "disco"
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.config().validate()
    }

    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport {
        let out = self.run_distributed(comm, shard, test);
        RunReport::from_parts(out.history, out.comm_stats, out.workspace, out.w, None)
    }
}

impl Solver for SyncSgd {
    fn name(&self) -> &str {
        "sync-sgd"
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.config().validate()
    }

    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport {
        let out = self.run_distributed(comm, shard, test);
        RunReport::from_parts(out.history, out.comm_stats, out.workspace, out.w, None)
    }
}

/// AIDE as a standalone solver: InexactDANE (the inner configuration lives
/// in [`AideConfig::dane`]) wrapped in catalyst acceleration. Absorbs the
/// old `run_cluster_aide` entry point.
#[derive(Debug, Clone, Default)]
pub struct Aide {
    config: AideConfig,
}

impl Aide {
    /// Creates the solver from the full AIDE configuration.
    pub fn new(config: AideConfig) -> Self {
        Self { config }
    }

    /// The solver configuration.
    pub fn config(&self) -> &AideConfig {
        &self.config
    }
}

impl Solver for Aide {
    fn name(&self) -> &str {
        "aide"
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.config.validate()
    }

    fn run(&self, comm: &mut dyn Communicator, shard: &Dataset, test: Option<&Dataset>) -> RunReport {
        let out = InexactDane::new(self.config.dane).run_distributed_aide(comm, shard, test, &self.config);
        RunReport::from_parts(out.history, out.comm_stats, out.workspace, out.w, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_cluster::NetworkModel;
    use nadmm_data::{partition_strong, SyntheticConfig};
    use newton_admm::NewtonAdmmConfig;

    #[test]
    fn a_boxed_solver_runs_through_the_shared_scaffolding() {
        let (train, test) = SyntheticConfig::mnist_like()
            .with_train_size(60)
            .with_test_size(20)
            .with_num_features(6)
            .with_num_classes(3)
            .generate(5);
        let (shards, _) = partition_strong(&train, 2);
        let cluster = Cluster::new(2, NetworkModel::ideal());
        let solver: Box<dyn Solver> = Box::new(NewtonAdmm::new(
            NewtonAdmmConfig::default().with_max_iters(3).with_lambda(1e-3),
        ));
        assert_eq!(solver.name(), "newton-admm");
        solver.validate().unwrap();
        let report = run_solver_on(&cluster, solver.as_ref(), &shards, Some(&test));
        assert_eq!(report.solver, "newton-admm");
        assert_eq!(report.num_workers, 2);
        assert_eq!(report.history.len(), 4);
        assert!(report.final_objective.unwrap().is_finite());
        assert!(report.final_accuracy.is_some());
        assert!(report.final_rho.is_some());
        assert!(report.comm_stats.collectives > 0);
        report.validate_schema().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected_before_running() {
        let bad = NewtonAdmm::new(NewtonAdmmConfig {
            rho0: -1.0,
            ..Default::default()
        });
        let err = Solver::validate(&bad).unwrap_err();
        assert_eq!(err.field, "rho0");
    }
}
