//! Structured run reports.
//!
//! Every solver run through the experiment layer produces one [`RunReport`]:
//! the full per-iteration history plus the headline numbers (final
//! objective/accuracy, simulated and wall time), the per-collective-kind
//! communication breakdown, and the device-workspace pool counters. Reports
//! serialize to JSON through the serde shims, which is what the
//! `scenario_runner` example archives and the CI smoke job validates.

use nadmm_cluster::CommStats;
use nadmm_device::WorkspaceStats;
use nadmm_metrics::RunHistory;
use serde::{Deserialize, Serialize, Value};

/// JSON has no representation for NaN/±∞, so serializing a report or spec
/// containing one can only produce garbage (`null` where a number belongs).
/// This error names the offending field instead.
#[derive(Debug, Clone, PartialEq)]
pub struct NonFiniteJsonError {
    /// Dotted path of the first non-finite field (e.g.
    /// `cluster.network.bandwidth`).
    pub path: String,
}

impl std::fmt::Display for NonFiniteJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot serialize to JSON: `{}` is not finite (JSON has no NaN/Infinity; \
             use finite hardware models — e.g. a real fabric instead of NetworkModel::ideal())",
            self.path
        )
    }
}

impl std::error::Error for NonFiniteJsonError {}

/// Finds the first non-finite number in a serialized value tree, returning
/// its dotted field path. Used to fail loudly *before* writing JSON that
/// would not round-trip.
pub fn non_finite_path(v: &Value) -> Option<String> {
    fn walk(v: &Value, path: &str) -> Option<String> {
        match v {
            Value::Num(n) if !n.is_finite() => Some(path.to_string()),
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .find_map(|(i, item)| walk(item, &format!("{path}[{i}]"))),
            Value::Map(entries) => entries.iter().find_map(|(k, val)| {
                let child = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                walk(val, &child)
            }),
            _ => None,
        }
    }
    walk(v, "")
}

/// Serializes any value as pretty JSON, returning [`NonFiniteJsonError`]
/// instead of emitting `null`s for non-finite numbers.
pub fn to_finite_json_pretty<T: Serialize>(value: &T) -> Result<String, NonFiniteJsonError> {
    let tree = value.to_value();
    match non_finite_path(&tree) {
        Some(path) => Err(NonFiniteJsonError { path }),
        None => Ok(serde_json::to_string_pretty(&tree).expect("finite value tree serializes")),
    }
}

/// Per-rank skew summary of one distributed run: how uneven the fleet's
/// progress was, taken from every rank's communication counters (the
/// headline numbers for straggler experiments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankSkew {
    /// Largest per-rank simulated compute time.
    pub max_compute_sec: f64,
    /// Smallest per-rank simulated compute time.
    pub min_compute_sec: f64,
    /// The most any single rank spent idle at blocking collectives waiting
    /// for slower ranks.
    pub max_idle_wait_sec: f64,
    /// Largest single-round arrival skew observed anywhere in the fleet.
    pub max_round_skew_sec: f64,
    /// Per-rank simulated compute seconds, in rank order.
    pub per_rank_compute_sec: Vec<f64>,
    /// Per-rank idle-wait seconds, in rank order.
    pub per_rank_idle_wait_sec: Vec<f64>,
}

impl RankSkew {
    /// Summarizes the per-rank communication counters of one run.
    pub fn from_rank_stats(stats: &[CommStats]) -> Self {
        let compute: Vec<f64> = stats.iter().map(|s| s.compute_time).collect();
        let idle: Vec<f64> = stats.iter().map(|s| s.idle_wait_time).collect();
        let min_compute = compute.iter().copied().fold(f64::INFINITY, f64::min);
        Self {
            max_compute_sec: compute.iter().fold(0.0, |a, &b| a.max(b)),
            min_compute_sec: if min_compute.is_finite() { min_compute } else { 0.0 },
            max_idle_wait_sec: idle.iter().fold(0.0, |a, &b| a.max(b)),
            max_round_skew_sec: stats.iter().map(|s| s.max_round_skew).fold(0.0, f64::max),
            per_rank_compute_sec: compute,
            per_rank_idle_wait_sec: idle,
        }
    }

    /// Ratio of the slowest to the fastest rank's compute time: 1.0 for a
    /// perfectly homogeneous fleet (or when no compute ran anywhere), and
    /// `f64::INFINITY` when some rank computed while another computed
    /// nothing at all (e.g. a rank dead from the first iteration) — the
    /// maximally imbalanced fleet must not masquerade as a homogeneous one.
    pub fn compute_imbalance(&self) -> f64 {
        if self.min_compute_sec > 0.0 {
            self.max_compute_sec / self.min_compute_sec
        } else if self.max_compute_sec > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

/// The unified result of one solver run on one dataset/cluster combination.
///
/// `Serialize` is hand-written (not derived) so `trace_profile` is *omitted*
/// when absent instead of serialized as `null`: reports from runs with
/// tracing disabled must stay byte-identical to reports produced before the
/// tracer existed.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct RunReport {
    /// Solver name (e.g. `"newton-admm"`, `"giant"`).
    pub solver: String,
    /// Dataset name (e.g. `"mnist-like/train"`).
    pub dataset: String,
    /// Number of cluster ranks the run used.
    pub num_workers: usize,
    /// Final global objective value, if any iterations were recorded.
    pub final_objective: Option<f64>,
    /// Final test accuracy in `[0, 1]`, when a test set was supplied.
    pub final_accuracy: Option<f64>,
    /// Total simulated cluster time of the run, in seconds.
    pub total_sim_time_sec: f64,
    /// Real wall-clock seconds the reproduction spent on the run.
    pub wall_time_sec: f64,
    /// Final mean penalty parameter (ADMM-family solvers only).
    pub final_rho: Option<f64>,
    /// Final global iterate (consensus `z` for ADMM, averaged `w` for the
    /// baselines).
    pub final_w: Vec<f64>,
    /// Per-iteration records.
    pub history: RunHistory,
    /// Communication counters of the master rank, with the per-kind
    /// breakdown.
    pub comm_stats: CommStats,
    /// Device-workspace pool counters of the master rank.
    pub workspace: WorkspaceStats,
    /// Per-rank skew summary (filled by the experiment runner, which sees
    /// every rank's counters; `None` for reports assembled from a single
    /// rank's output).
    pub rank_skew: Option<RankSkew>,
    /// Aggregated span-tracer flat profile (per-rank and merged per-tag
    /// times), filled by the experiment runner when tracing was enabled for
    /// the run. `None` — and absent from the JSON — otherwise.
    pub trace_profile: Option<nadmm_trace::TraceProfile>,
}

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("solver".to_string(), self.solver.to_value()),
            ("dataset".to_string(), self.dataset.to_value()),
            ("num_workers".to_string(), self.num_workers.to_value()),
            ("final_objective".to_string(), self.final_objective.to_value()),
            ("final_accuracy".to_string(), self.final_accuracy.to_value()),
            ("total_sim_time_sec".to_string(), self.total_sim_time_sec.to_value()),
            ("wall_time_sec".to_string(), self.wall_time_sec.to_value()),
            ("final_rho".to_string(), self.final_rho.to_value()),
            ("final_w".to_string(), self.final_w.to_value()),
            ("history".to_string(), self.history.to_value()),
            ("comm_stats".to_string(), self.comm_stats.to_value()),
            ("workspace".to_string(), self.workspace.to_value()),
            ("rank_skew".to_string(), self.rank_skew.to_value()),
        ];
        if let Some(profile) = &self.trace_profile {
            fields.push(("trace_profile".to_string(), profile.to_value()));
        }
        Value::Map(fields)
    }
}

impl RunReport {
    /// Assembles a report from a run's history and counters. The headline
    /// fields (`final_objective`, `total_sim_time_sec`, …) are derived from
    /// the history.
    pub fn from_parts(
        history: RunHistory,
        comm_stats: CommStats,
        workspace: WorkspaceStats,
        final_w: Vec<f64>,
        final_rho: Option<f64>,
    ) -> Self {
        Self {
            solver: history.solver.clone(),
            dataset: history.dataset.clone(),
            num_workers: history.num_workers,
            final_objective: history.final_objective(),
            final_accuracy: history.final_accuracy(),
            total_sim_time_sec: history.total_sim_time(),
            wall_time_sec: history.records.last().map(|r| r.wall_time_sec).unwrap_or(0.0),
            final_rho,
            final_w,
            history,
            comm_stats,
            workspace,
            rank_skew: None,
            trace_profile: None,
        }
    }

    /// Builder-style per-rank skew summary.
    pub fn with_rank_skew(mut self, skew: RankSkew) -> Self {
        self.rank_skew = Some(skew);
        self
    }

    /// Serializes the report as pretty JSON. Non-finite values anywhere in
    /// the report are a loud [`NonFiniteJsonError`] naming the field — JSON
    /// would render them as `null` and the report would no longer
    /// round-trip.
    pub fn to_json(&self) -> Result<String, NonFiniteJsonError> {
        to_finite_json_pretty(self)
    }

    /// Parses a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Checks the structural invariants every well-formed report satisfies
    /// (the CI smoke job runs this on the scenario runner's output):
    /// at least one iteration record, finite objectives, accuracies inside
    /// `[0, 1]`, non-decreasing simulated time, and headline fields that
    /// agree with the history they were derived from.
    pub fn validate_schema(&self) -> Result<(), String> {
        if self.solver.is_empty() {
            return Err("solver name is empty".into());
        }
        if self.num_workers == 0 {
            return Err("num_workers must be at least 1".into());
        }
        if self.history.is_empty() {
            return Err("history has no iteration records".into());
        }
        if self.history.solver != self.solver || self.history.num_workers != self.num_workers {
            return Err("headline fields disagree with the embedded history".into());
        }
        if self.final_objective != self.history.final_objective() {
            return Err("final_objective does not match the last record".into());
        }
        if !self.final_objective.unwrap_or(0.0).is_finite() {
            return Err("final objective is not finite".into());
        }
        let mut prev_sim = f64::NEG_INFINITY;
        for r in &self.history.records {
            if !r.objective.is_finite() {
                return Err(format!("iteration {} has a non-finite objective", r.iteration));
            }
            if r.sim_time_sec < prev_sim || !r.sim_time_sec.is_finite() || r.sim_time_sec < 0.0 {
                return Err(format!("iteration {} breaks simulated-time monotonicity", r.iteration));
            }
            prev_sim = r.sim_time_sec;
            if let Some(acc) = r.test_accuracy {
                if !(0.0..=1.0).contains(&acc) {
                    return Err(format!("iteration {} accuracy {acc} outside [0, 1]", r.iteration));
                }
            }
        }
        if self.final_w.iter().any(|v| !v.is_finite()) {
            return Err("final iterate contains non-finite values".into());
        }
        if self.comm_stats.bytes_sent < 0.0 || self.comm_stats.comm_time < 0.0 {
            return Err("communication counters are negative".into());
        }
        if let Some(skew) = &self.rank_skew {
            let scalars = [
                skew.max_compute_sec,
                skew.min_compute_sec,
                skew.max_idle_wait_sec,
                skew.max_round_skew_sec,
            ];
            if scalars.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err("rank skew contains negative or non-finite values".into());
            }
            if skew.per_rank_compute_sec.len() != self.num_workers || skew.per_rank_idle_wait_sec.len() != self.num_workers {
                return Err("rank skew vectors disagree with num_workers".into());
            }
        }
        if let Some(profile) = &self.trace_profile {
            profile.validate_schema().map_err(|e| format!("trace profile: {e}"))?;
            if profile.per_rank.len() != self.num_workers {
                return Err("trace profile does not cover every rank".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_metrics::IterationRecord;

    fn report() -> RunReport {
        let mut h = RunHistory::new("newton-admm", "mnist-like/train", 4);
        h.push(IterationRecord::new(0, 0.0, 0.01, 2.3).with_accuracy(0.1));
        h.push(IterationRecord::new(1, 0.5, 0.02, 1.1).with_accuracy(0.6).with_mean_rho(1.5));
        RunReport::from_parts(
            h,
            CommStats::default(),
            WorkspaceStats::default(),
            vec![0.5, -0.25],
            Some(1.5),
        )
    }

    #[test]
    fn headline_fields_derive_from_the_history() {
        let r = report();
        assert_eq!(r.solver, "newton-admm");
        assert_eq!(r.num_workers, 4);
        assert_eq!(r.final_objective, Some(1.1));
        assert_eq!(r.final_accuracy, Some(0.6));
        assert_eq!(r.total_sim_time_sec, 0.5);
        assert_eq!(r.wall_time_sec, 0.02);
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let r = report();
        let back = RunReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_round_trip_preserves_rank_skew() {
        let mut a = CommStats::default();
        a.record_compute(1.0);
        a.record_skew(0.5, 0.75);
        let mut b = CommStats::default();
        b.record_compute(2.0);
        let mut r = report();
        r.num_workers = 2;
        r.history.num_workers = 2;
        let r = r.with_rank_skew(RankSkew::from_rank_stats(&[a, b]));
        r.validate_schema().unwrap();
        let skew = r.rank_skew.as_ref().unwrap();
        assert_eq!(skew.max_compute_sec, 2.0);
        assert_eq!(skew.min_compute_sec, 1.0);
        assert_eq!(skew.max_idle_wait_sec, 0.5);
        assert_eq!(skew.max_round_skew_sec, 0.75);
        assert_eq!(skew.compute_imbalance(), 2.0);
        let back = RunReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn compute_imbalance_distinguishes_dead_ranks_from_homogeneous_fleets() {
        let mut busy = CommStats::default();
        busy.record_compute(1.0);
        let idle = CommStats::default();
        // One rank computed, one never did: maximal imbalance, not 1.0.
        assert_eq!(RankSkew::from_rank_stats(&[busy, idle]).compute_imbalance(), f64::INFINITY);
        // Nobody computed at all: trivially homogeneous.
        assert_eq!(RankSkew::from_rank_stats(&[idle, idle]).compute_imbalance(), 1.0);
    }

    #[test]
    fn non_finite_values_are_a_loud_serialization_error_not_null_garbage() {
        let mut r = report();
        r.comm_stats.comm_time = f64::INFINITY;
        let err = r.to_json().unwrap_err();
        assert_eq!(err.path, "comm_stats.comm_time");
        assert!(format!("{err}").contains("comm_stats.comm_time"));

        let mut r = report();
        r.final_w[1] = f64::NAN;
        assert_eq!(r.to_json().unwrap_err().path, "final_w[1]");

        assert!(report().to_json().is_ok());
    }

    #[test]
    fn schema_validation_accepts_a_good_report() {
        assert_eq!(report().validate_schema(), Ok(()));
    }

    #[test]
    fn schema_validation_rejects_corruption() {
        let mut r = report();
        r.history.records[1].objective = f64::NAN;
        r.final_objective = Some(f64::NAN);
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.history.records.clear();
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.final_objective = Some(0.0);
        assert!(r.validate_schema().unwrap_err().contains("final_objective"));

        let mut r = report();
        r.history.records[1].sim_time_sec = -1.0;
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.history.records[0].test_accuracy = Some(1.5);
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.final_w[0] = f64::INFINITY;
        assert!(r.validate_schema().is_err());
    }
}
