//! Structured run reports.
//!
//! Every solver run through the experiment layer produces one [`RunReport`]:
//! the full per-iteration history plus the headline numbers (final
//! objective/accuracy, simulated and wall time), the per-collective-kind
//! communication breakdown, and the device-workspace pool counters. Reports
//! serialize to JSON through the serde shims, which is what the
//! `scenario_runner` example archives and the CI smoke job validates.

use nadmm_cluster::CommStats;
use nadmm_device::WorkspaceStats;
use nadmm_metrics::RunHistory;
use serde::{Deserialize, Serialize};

/// The unified result of one solver run on one dataset/cluster combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Solver name (e.g. `"newton-admm"`, `"giant"`).
    pub solver: String,
    /// Dataset name (e.g. `"mnist-like/train"`).
    pub dataset: String,
    /// Number of cluster ranks the run used.
    pub num_workers: usize,
    /// Final global objective value, if any iterations were recorded.
    pub final_objective: Option<f64>,
    /// Final test accuracy in `[0, 1]`, when a test set was supplied.
    pub final_accuracy: Option<f64>,
    /// Total simulated cluster time of the run, in seconds.
    pub total_sim_time_sec: f64,
    /// Real wall-clock seconds the reproduction spent on the run.
    pub wall_time_sec: f64,
    /// Final mean penalty parameter (ADMM-family solvers only).
    pub final_rho: Option<f64>,
    /// Final global iterate (consensus `z` for ADMM, averaged `w` for the
    /// baselines).
    pub final_w: Vec<f64>,
    /// Per-iteration records.
    pub history: RunHistory,
    /// Communication counters of the master rank, with the per-kind
    /// breakdown.
    pub comm_stats: CommStats,
    /// Device-workspace pool counters of the master rank.
    pub workspace: WorkspaceStats,
}

impl RunReport {
    /// Assembles a report from a run's history and counters. The headline
    /// fields (`final_objective`, `total_sim_time_sec`, …) are derived from
    /// the history.
    pub fn from_parts(
        history: RunHistory,
        comm_stats: CommStats,
        workspace: WorkspaceStats,
        final_w: Vec<f64>,
        final_rho: Option<f64>,
    ) -> Self {
        Self {
            solver: history.solver.clone(),
            dataset: history.dataset.clone(),
            num_workers: history.num_workers,
            final_objective: history.final_objective(),
            final_accuracy: history.final_accuracy(),
            total_sim_time_sec: history.total_sim_time(),
            wall_time_sec: history.records.last().map(|r| r.wall_time_sec).unwrap_or(0.0),
            final_rho,
            final_w,
            history,
            comm_stats,
            workspace,
        }
    }

    /// Serializes the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serializes")
    }

    /// Parses a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Checks the structural invariants every well-formed report satisfies
    /// (the CI smoke job runs this on the scenario runner's output):
    /// at least one iteration record, finite objectives, accuracies inside
    /// `[0, 1]`, non-decreasing simulated time, and headline fields that
    /// agree with the history they were derived from.
    pub fn validate_schema(&self) -> Result<(), String> {
        if self.solver.is_empty() {
            return Err("solver name is empty".into());
        }
        if self.num_workers == 0 {
            return Err("num_workers must be at least 1".into());
        }
        if self.history.is_empty() {
            return Err("history has no iteration records".into());
        }
        if self.history.solver != self.solver || self.history.num_workers != self.num_workers {
            return Err("headline fields disagree with the embedded history".into());
        }
        if self.final_objective != self.history.final_objective() {
            return Err("final_objective does not match the last record".into());
        }
        if !self.final_objective.unwrap_or(0.0).is_finite() {
            return Err("final objective is not finite".into());
        }
        let mut prev_sim = f64::NEG_INFINITY;
        for r in &self.history.records {
            if !r.objective.is_finite() {
                return Err(format!("iteration {} has a non-finite objective", r.iteration));
            }
            if r.sim_time_sec < prev_sim || !r.sim_time_sec.is_finite() || r.sim_time_sec < 0.0 {
                return Err(format!("iteration {} breaks simulated-time monotonicity", r.iteration));
            }
            prev_sim = r.sim_time_sec;
            if let Some(acc) = r.test_accuracy {
                if !(0.0..=1.0).contains(&acc) {
                    return Err(format!("iteration {} accuracy {acc} outside [0, 1]", r.iteration));
                }
            }
        }
        if self.final_w.iter().any(|v| !v.is_finite()) {
            return Err("final iterate contains non-finite values".into());
        }
        if self.comm_stats.bytes_sent < 0.0 || self.comm_stats.comm_time < 0.0 {
            return Err("communication counters are negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nadmm_metrics::IterationRecord;

    fn report() -> RunReport {
        let mut h = RunHistory::new("newton-admm", "mnist-like/train", 4);
        h.push(IterationRecord::new(0, 0.0, 0.01, 2.3).with_accuracy(0.1));
        h.push(IterationRecord::new(1, 0.5, 0.02, 1.1).with_accuracy(0.6).with_mean_rho(1.5));
        RunReport::from_parts(
            h,
            CommStats::default(),
            WorkspaceStats::default(),
            vec![0.5, -0.25],
            Some(1.5),
        )
    }

    #[test]
    fn headline_fields_derive_from_the_history() {
        let r = report();
        assert_eq!(r.solver, "newton-admm");
        assert_eq!(r.num_workers, 4);
        assert_eq!(r.final_objective, Some(1.1));
        assert_eq!(r.final_accuracy, Some(0.6));
        assert_eq!(r.total_sim_time_sec, 0.5);
        assert_eq!(r.wall_time_sec, 0.02);
    }

    #[test]
    fn json_round_trip_preserves_the_report() {
        let r = report();
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn schema_validation_accepts_a_good_report() {
        assert_eq!(report().validate_schema(), Ok(()));
    }

    #[test]
    fn schema_validation_rejects_corruption() {
        let mut r = report();
        r.history.records[1].objective = f64::NAN;
        r.final_objective = Some(f64::NAN);
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.history.records.clear();
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.final_objective = Some(0.0);
        assert!(r.validate_schema().unwrap_err().contains("final_objective"));

        let mut r = report();
        r.history.records[1].sim_time_sec = -1.0;
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.history.records[0].test_accuracy = Some(1.5);
        assert!(r.validate_schema().is_err());

        let mut r = report();
        r.final_w[0] = f64::INFINITY;
        assert!(r.validate_schema().is_err());
    }
}
