//! Equivalence proofs: every solver run through the new `Experiment` API
//! produces **bit-identical** iteration records to the old direct
//! `run_cluster` entry points, for every solver and for ranks ∈ {1, 4}.
//!
//! "Bit-identical" means every numeric field of every record compares equal
//! by `f64::to_bits`, *except* `wall_time_sec`, which measures the host
//! machine and differs between any two runs by construction. The final
//! iterates are also compared exactly.

#![allow(deprecated)] // the whole point is to compare against the deprecated entry points

use nadmm_baselines::{AideConfig, DaneConfig, Disco, DiscoConfig, Giant, GiantConfig, InexactDane, SyncSgd, SyncSgdConfig};
use nadmm_cluster::{Cluster, NetworkModel};
use nadmm_data::{partition_strong, Dataset, SyntheticConfig};
use nadmm_experiment::{ClusterSpec, Experiment, RunReport, SolverSpec};
use nadmm_metrics::RunHistory;
use newton_admm::{NewtonAdmm, NewtonAdmmConfig};

fn data(seed: u64) -> (Dataset, Dataset) {
    SyntheticConfig::mnist_like()
        .with_train_size(96)
        .with_test_size(24)
        .with_num_features(8)
        .with_num_classes(3)
        .generate(seed)
}

fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn opt_bits_equal(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => bits_equal(a, b),
        _ => false,
    }
}

/// Asserts two histories are identical except for wall time.
fn assert_histories_bit_identical(old: &RunHistory, new: &RunHistory) {
    assert_eq!(old.solver, new.solver);
    assert_eq!(old.dataset, new.dataset);
    assert_eq!(old.num_workers, new.num_workers);
    assert_eq!(old.records.len(), new.records.len(), "record counts differ");
    for (o, n) in old.records.iter().zip(&new.records) {
        assert_eq!(o.iteration, n.iteration);
        assert!(
            bits_equal(o.objective, n.objective),
            "objective differs at iteration {}: {} vs {}",
            o.iteration,
            o.objective,
            n.objective
        );
        assert!(
            bits_equal(o.sim_time_sec, n.sim_time_sec),
            "sim time differs at iteration {}: {} vs {}",
            o.iteration,
            o.sim_time_sec,
            n.sim_time_sec
        );
        assert!(
            bits_equal(o.comm_bytes, n.comm_bytes),
            "comm bytes differ at iteration {}",
            o.iteration
        );
        assert!(
            opt_bits_equal(o.test_accuracy, n.test_accuracy),
            "accuracy differs at iteration {}",
            o.iteration
        );
        assert!(
            opt_bits_equal(o.grad_norm, n.grad_norm),
            "grad norm differs at iteration {}",
            o.iteration
        );
        assert!(
            opt_bits_equal(o.consensus_residual, n.consensus_residual),
            "residual differs at iteration {}",
            o.iteration
        );
        assert!(
            opt_bits_equal(o.mean_rho, n.mean_rho),
            "mean rho differs at iteration {}",
            o.iteration
        );
    }
}

fn assert_iterates_bit_identical(old: &[f64], new: &[f64]) {
    assert_eq!(old.len(), new.len());
    for (o, n) in old.iter().zip(new) {
        assert!(bits_equal(*o, *n), "final iterates differ: {o} vs {n}");
    }
}

/// Runs one solver spec through the Experiment API on an in-memory dataset.
fn run_new_api(spec: SolverSpec, train: &Dataset, test: Option<&Dataset>, ranks: usize) -> RunReport {
    Experiment::new()
        .with_data(train.clone(), test.cloned())
        .with_cluster(ClusterSpec::new(ranks, NetworkModel::infiniband_100g()))
        .with_solver(spec)
        .run()
        .expect("experiment runs")
        .remove(0)
}

#[test]
fn newton_admm_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(1);
    let cfg = NewtonAdmmConfig::default().with_max_iters(5).with_lambda(1e-3);
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = NewtonAdmm::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let new = run_new_api(SolverSpec::NewtonAdmm(cfg), &train, Some(&test), ranks);
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.z, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
        assert!(bits_equal(old.final_rho, new.final_rho.unwrap()));
    }
}

#[test]
fn giant_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(2);
    let cfg = GiantConfig {
        max_iters: 4,
        lambda: 1e-3,
        ..Default::default()
    };
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = Giant::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let new = run_new_api(SolverSpec::Giant(cfg), &train, Some(&test), ranks);
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.w, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
    }
}

#[test]
fn inexact_dane_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(3);
    let cfg = DaneConfig {
        max_iters: 3,
        lambda: 1e-3,
        svrg_iters: 20,
        svrg_batch: 8,
        svrg_step: 5e-3,
        ..Default::default()
    };
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = InexactDane::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let new = run_new_api(SolverSpec::InexactDane(cfg), &train, Some(&test), ranks);
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.w, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
    }
}

#[test]
fn aide_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(4);
    let aide = AideConfig {
        dane: DaneConfig {
            max_iters: 3,
            lambda: 1e-3,
            svrg_iters: 20,
            svrg_batch: 8,
            svrg_step: 5e-3,
            ..Default::default()
        },
        tau: 0.5,
        zeta: 0.5,
    };
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = InexactDane::new(aide.dane).run_cluster_aide(&cluster, &shards, Some(&test), &aide);
        let new = run_new_api(SolverSpec::Aide(aide), &train, Some(&test), ranks);
        assert_eq!(new.solver, "aide");
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.w, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
    }
}

#[test]
fn disco_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(5);
    let cfg = DiscoConfig {
        max_iters: 4,
        lambda: 1e-3,
        ..Default::default()
    };
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = Disco::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let new = run_new_api(SolverSpec::Disco(cfg), &train, Some(&test), ranks);
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.w, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
    }
}

#[test]
fn sync_sgd_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(6);
    let cfg = SyncSgdConfig {
        epochs: 3,
        lambda: 1e-3,
        batch_size: 16,
        step_size: 0.5,
        ..Default::default()
    };
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = SyncSgd::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        let new = run_new_api(SolverSpec::SyncSgd(cfg), &train, Some(&test), ranks);
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.w, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
    }
}

#[test]
fn sgd_grid_search_is_bit_identical_through_the_experiment_api() {
    let (train, test) = data(7);
    let base = SyncSgdConfig {
        epochs: 3,
        lambda: 1e-3,
        batch_size: 16,
        ..Default::default()
    };
    let grid = [1e-7, 0.5, 1e3];
    for ranks in [1usize, 4] {
        let (shards, _) = partition_strong(&train, ranks);
        let cluster = Cluster::new(ranks, NetworkModel::infiniband_100g());
        let old = SyncSgd::new(base).run_cluster_best_of_grid(&cluster, &shards, Some(&test), &grid);
        let new = run_new_api(
            SolverSpec::SyncSgdGrid {
                base,
                grid: grid.to_vec(),
            },
            &train,
            Some(&test),
            ranks,
        );
        assert_histories_bit_identical(&old.history, &new.history);
        assert_iterates_bit_identical(&old.w, &new.final_w);
        assert_eq!(old.comm_stats, new.comm_stats);
    }
}

#[test]
fn runs_without_a_test_set_are_also_identical() {
    // The `test: None` path skips the accuracy instrumentation entirely —
    // make sure the experiment layer does not sneak a test set in.
    let (train, _) = data(8);
    let cfg = NewtonAdmmConfig::default().with_max_iters(4).with_lambda(1e-3);
    let (shards, _) = partition_strong(&train, 4);
    let cluster = Cluster::new(4, NetworkModel::infiniband_100g());
    let old = NewtonAdmm::new(cfg).run_cluster(&cluster, &shards, None);
    let new = run_new_api(SolverSpec::NewtonAdmm(cfg), &train, None, 4);
    assert_histories_bit_identical(&old.history, &new.history);
    assert!(new.final_accuracy.is_none());
}
