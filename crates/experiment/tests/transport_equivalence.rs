//! The experiment-level transport determinism contract: a scenario run as
//! one process per rank over loopback TCP must emit reports **byte
//! identical** (after zeroing host wall clocks, which is what the runner's
//! `--deterministic` flag does) to the same scenario on the in-process
//! thread cluster. This is the library-level half of the CI
//! `transport-smoke` job, which additionally proves it across real OS
//! processes with `cmp`.

use nadmm_baselines::SyncSgdConfig;
use nadmm_cluster::transport::tcp::reserve_loopback_peers;
use nadmm_cluster::{Compression, NetworkModel, StragglerModel, TcpTransport};
use nadmm_data::SyntheticConfig;
use nadmm_device::DeviceSpec;
use nadmm_experiment::{ClusterSpec, DataSpec, PartitionSpec, RunReport, ScenarioSpec, SolverSpec};
use newton_admm::NewtonAdmmConfig;

/// A scenario exercising the paths most likely to diverge across
/// transports: a rooted grid search (per-candidate reconnects), wire
/// compression, a straggled heterogeneous fleet, and plain Newton-ADMM.
fn scenario(cluster: ClusterSpec) -> ScenarioSpec {
    ScenarioSpec {
        name: "transport-equivalence".into(),
        data: DataSpec::Synthetic {
            config: SyntheticConfig::mnist_like()
                .with_train_size(60)
                .with_test_size(20)
                .with_num_features(6)
                .with_num_classes(3),
            seed: 9,
        },
        partition: PartitionSpec::Strong,
        cluster,
        solvers: vec![
            SolverSpec::NewtonAdmm(NewtonAdmmConfig::default().with_max_iters(2).with_lambda(1e-3)),
            SolverSpec::SyncSgdGrid {
                base: SyncSgdConfig {
                    epochs: 2,
                    lambda: 1e-3,
                    batch_size: 10,
                    ..Default::default()
                },
                grid: vec![1e-7, 0.5],
            },
        ],
    }
}

/// Runs the scenario with every rank as a thread owning a real TCP socket
/// mesh on loopback, returning rank 0's reports.
fn run_over_tcp(scenario: &ScenarioSpec) -> Vec<RunReport> {
    let ranks = scenario.cluster.ranks;
    let peers = reserve_loopback_peers(ranks).expect("loopback ports");
    let mut outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for rank in 0..ranks {
            let peers = peers.clone();
            handles.push(scope.spawn(move || {
                let transport = TcpTransport::connect(rank, &peers).expect("tcp bootstrap");
                scenario.run_with_transport(Box::new(transport)).expect("tcp rank runs")
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("tcp rank panicked"))
            .collect::<Vec<_>>()
    });
    for other in &outcomes[1..] {
        assert!(other.is_none(), "only rank 0 assembles reports");
    }
    outcomes.swap_remove(0).expect("rank 0 reports")
}

/// Zeroes the host wall-clock fields — the only nondeterministic part of a
/// report — exactly like the runner's `--deterministic` flag.
fn deterministic(mut reports: Vec<RunReport>) -> Vec<RunReport> {
    for report in reports.iter_mut() {
        report.wall_time_sec = 0.0;
        for record in report.history.records.iter_mut() {
            record.wall_time_sec = 0.0;
        }
    }
    reports
}

fn assert_reports_byte_identical(scenario: &ScenarioSpec) {
    let thread = deterministic(scenario.run().expect("thread run"));
    let tcp = deterministic(run_over_tcp(scenario));
    assert_eq!(thread.len(), tcp.len());
    for (a, b) in thread.iter().zip(&tcp) {
        let a = a.to_json().expect("thread report serializes");
        let b = b.to_json().expect("tcp report serializes");
        assert_eq!(a, b, "reports deviated across transports");
    }
}

#[test]
fn tcp_experiments_match_thread_experiments_byte_for_byte() {
    let cluster = ClusterSpec::new(2, NetworkModel::infiniband_100g());
    assert_reports_byte_identical(&scenario(cluster));
}

#[test]
fn tcp_experiments_match_under_compression_stragglers_and_hetero_devices() {
    let cluster = ClusterSpec::new(2, NetworkModel::ethernet_10g())
        .with_compression(Compression::F16)
        .with_rank_devices([DeviceSpec::tesla_p100(), DeviceSpec::tesla_v100()])
        .with_straggler(StragglerModel::jitter(0.3, 11).with_slow_rank(1, 2.0));
    assert_reports_byte_identical(&scenario(cluster));
}
