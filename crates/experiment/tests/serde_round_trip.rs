//! Serde round-trip coverage for every config/spec type of the experiment
//! API, plus a golden-file test pinning the on-disk JSON schema of
//! [`ScenarioSpec`] (the format `scenarios/*.json` and the CI smoke job
//! rely on).

use nadmm_baselines::{AideConfig, DaneConfig, DiscoConfig, GiantConfig, SyncSgdConfig};
use nadmm_cluster::{CollectiveAlgorithm, CollectiveSelector, Compression, NetworkModel, SlowRank, StragglerModel};
use nadmm_data::SyntheticConfig;
use nadmm_device::DeviceSpec;
use nadmm_experiment::{ClusterSpec, DataSpec, PartitionSpec, ScenarioSpec, SolverSpec};
use nadmm_solver::{CgConfig, LineSearchConfig, NewtonConfig};
use newton_admm::{NewtonAdmmConfig, PenaltyRule, SpectralConfig};
use serde::{Deserialize, Serialize};

fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: &T) {
    let json = serde_json::to_string_pretty(value).expect("serializes");
    let back: T = serde_json::from_str(&json).unwrap_or_else(|e| panic!("deserializes: {e} in\n{json}"));
    assert_eq!(&back, value, "round trip changed the value");
}

#[test]
fn solver_configs_round_trip() {
    round_trip(&CgConfig {
        max_iters: 17,
        tolerance: 3e-7,
    });
    round_trip(&LineSearchConfig {
        initial_step: 0.75,
        beta: 2e-4,
        shrink: 0.25,
        max_iters: 6,
    });
    round_trip(&NewtonConfig {
        max_iters: 9,
        grad_tol: 1e-9,
        ..Default::default()
    });
}

#[test]
fn penalty_rules_round_trip_in_every_variant() {
    round_trip(&PenaltyRule::Fixed);
    round_trip(&PenaltyRule::ResidualBalancing { mu: 12.0, tau: 1.5 });
    round_trip(&PenaltyRule::Spectral(SpectralConfig {
        correlation_threshold: 0.3,
        update_every: 3,
        safeguard: 1e8,
        rho_min: 1e-5,
        rho_max: 1e5,
    }));
}

#[test]
fn newton_admm_config_round_trips() {
    round_trip(&NewtonAdmmConfig {
        max_iters: 42,
        lambda: 1e-3,
        newton_steps_per_iter: 2,
        rho0: 0.5,
        consensus_tol: 1e-6,
        penalty: PenaltyRule::ResidualBalancing { mu: 10.0, tau: 2.0 },
        record_accuracy: false,
        device: DeviceSpec::tesla_v100(),
        ..Default::default()
    });
    // The heterogeneity knobs round-trip both disabled (None) and enabled.
    round_trip(&NewtonAdmmConfig::default().with_staleness_deadline(2.5e-4).with_dropout(3, 7));
}

#[test]
fn baseline_configs_round_trip() {
    round_trip(&GiantConfig {
        max_iters: 21,
        lambda: 2e-4,
        line_search_steps: 8,
        grad_tol: 1e-7,
        ..Default::default()
    });
    round_trip(&DaneConfig {
        max_iters: 7,
        svrg_iters: 55,
        svrg_batch: 32,
        svrg_step: 2e-3,
        seed: 99,
        ..Default::default()
    });
    round_trip(&AideConfig {
        tau: 0.25,
        zeta: 0.9,
        ..Default::default()
    });
    round_trip(&DiscoConfig {
        max_iters: 11,
        cg_iters: 20,
        cg_tolerance: 1e-6,
        ..Default::default()
    });
    round_trip(&SyncSgdConfig {
        epochs: 13,
        batch_size: 64,
        step_size: 0.1,
        momentum: 0.9,
        seed: 5,
        ..Default::default()
    });
}

#[test]
fn experiment_specs_round_trip() {
    round_trip(&DataSpec::Synthetic {
        config: SyntheticConfig::cifar10_like().with_train_size(500).with_num_features(32),
        seed: 11,
    });
    round_trip(&DataSpec::Libsvm {
        train_path: "data/train.svm".into(),
        test_path: Some("data/test.svm".into()),
    });
    round_trip(&PartitionSpec::Strong);
    round_trip(&PartitionSpec::Weak { per_worker: 128 });
    round_trip(&ClusterSpec::new(8, NetworkModel::ethernet_10g()));
    // Note: `DeviceSpec::cpu_like()` and `NetworkModel::ideal()` carry
    // infinite fields and therefore have no JSON form; scenario files must
    // use finite hardware models.
    round_trip(
        &ClusterSpec::new(16, NetworkModel::infiniband_100g())
            .with_collectives(CollectiveSelector::Force(CollectiveAlgorithm::Ring))
            .with_device(DeviceSpec::tesla_v100()),
    );
    // Compressed collectives round-trip in every policy, and scenario files
    // written before the `compression` key existed still parse (missing key
    // → `Compression::None`).
    for compression in [Compression::None, Compression::F16, Compression::Bf16] {
        round_trip(&ClusterSpec::new(4, NetworkModel::ethernet_10g()).with_compression(compression));
    }
    let with_key = serde_json::to_string(&ClusterSpec::new(4, NetworkModel::ethernet_10g())).expect("serializes");
    let without_key = with_key.replace("\"compression\":\"none\",", "");
    assert_ne!(with_key, without_key, "the compression key must appear in serialized form");
    let legacy: ClusterSpec = serde_json::from_str(&without_key).expect("pre-compression scenario files still parse");
    assert_eq!(legacy.compression, Compression::None);
    // Heterogeneous fleets: per-rank devices and straggler models.
    round_trip(&StragglerModel::jitter(0.25, 99).with_slow_rank(1, 4.0));
    round_trip(&SlowRank { rank: 2, factor: 8.0 });
    round_trip(
        &ClusterSpec::new(2, NetworkModel::infiniband_100g())
            .with_rank_devices([DeviceSpec::tesla_p100(), DeviceSpec::tesla_v100()])
            .with_straggler(StragglerModel::jitter(0.1, 3)),
    );
}

#[test]
fn every_solver_spec_variant_round_trips() {
    let specs = vec![
        SolverSpec::NewtonAdmm(NewtonAdmmConfig::default()),
        SolverSpec::Giant(GiantConfig::default()),
        SolverSpec::InexactDane(DaneConfig::default()),
        SolverSpec::Aide(AideConfig::default()),
        SolverSpec::Disco(DiscoConfig::default()),
        SolverSpec::SyncSgd(SyncSgdConfig::default()),
        SolverSpec::SyncSgdGrid {
            base: SyncSgdConfig::default(),
            grid: vec![1e-2, 1e-1, 1.0],
        },
    ];
    for spec in &specs {
        round_trip(spec);
    }
    round_trip(&specs);
}

/// The canonical scenario pinned by the golden file: every solver variant on
/// a mnist-like problem over 4 Infiniband ranks.
fn golden_scenario() -> ScenarioSpec {
    ScenarioSpec {
        name: "golden".into(),
        data: DataSpec::Synthetic {
            config: SyntheticConfig::mnist_like()
                .with_train_size(96)
                .with_test_size(24)
                .with_num_features(8)
                .with_num_classes(3),
            seed: 42,
        },
        partition: PartitionSpec::Strong,
        // The golden cluster pins the heterogeneity schema too: a straggler
        // model with one designated slow rank.
        cluster: ClusterSpec::new(4, NetworkModel::infiniband_100g())
            .with_straggler(StragglerModel::jitter(0.0, 42).with_slow_rank(3, 2.0)),
        solvers: vec![
            SolverSpec::NewtonAdmm(
                NewtonAdmmConfig::default()
                    .with_max_iters(2)
                    .with_lambda(1e-3)
                    .with_staleness_deadline(1e-3),
            ),
            SolverSpec::Giant(GiantConfig {
                max_iters: 2,
                lambda: 1e-3,
                ..Default::default()
            }),
            SolverSpec::InexactDane(DaneConfig {
                max_iters: 2,
                lambda: 1e-3,
                svrg_iters: 10,
                ..Default::default()
            }),
            SolverSpec::Aide(AideConfig {
                dane: DaneConfig {
                    max_iters: 2,
                    lambda: 1e-3,
                    svrg_iters: 10,
                    ..Default::default()
                },
                tau: 0.5,
                zeta: 0.5,
            }),
            SolverSpec::Disco(DiscoConfig {
                max_iters: 2,
                lambda: 1e-3,
                ..Default::default()
            }),
            SolverSpec::SyncSgdGrid {
                base: SyncSgdConfig {
                    epochs: 2,
                    lambda: 1e-3,
                    batch_size: 16,
                    ..Default::default()
                },
                grid: vec![1e-2, 0.5],
            },
        ],
    }
}

#[test]
fn golden_scenario_file_matches_the_schema_exactly() {
    let committed = include_str!("golden/scenario.json");
    // Parsing the committed file must reproduce the canonical value …
    let parsed = ScenarioSpec::from_json(committed).expect("golden file parses");
    assert_eq!(parsed, golden_scenario(), "golden file diverged from the canonical scenario");
    // … and serializing the canonical value must reproduce the committed
    // bytes (catches schema drift: renamed fields, reordered variants,
    // changed number formatting).
    assert_eq!(
        golden_scenario().to_json().expect("golden scenario is finite").trim(),
        committed.trim(),
        "JSON schema drifted — regenerate tests/golden/scenario.json if the change is intentional"
    );
}

#[test]
fn scenario_specs_round_trip() {
    round_trip(&golden_scenario());
}

/// Rewrites the golden file from the canonical scenario when
/// `NADMM_REGEN_GOLDEN=1` (for intentional schema changes); a no-op
/// otherwise.
#[test]
fn regenerate_golden_when_requested() {
    if std::env::var("NADMM_REGEN_GOLDEN").ok().as_deref() == Some("1") {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/scenario.json");
        std::fs::write(path, golden_scenario().to_json().expect("golden scenario is finite") + "\n").expect("golden file writes");
    }
}
