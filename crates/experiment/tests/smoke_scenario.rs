//! Keeps the committed CI smoke scenario (`scenarios/smoke.json`) honest:
//! the file must parse to exactly the canonical definition below, validate,
//! and (cheaply) run. The CI workflow additionally executes it through the
//! `scenario_runner` example and schema-checks the emitted reports.

use nadmm_baselines::{AideConfig, DaneConfig, DiscoConfig, GiantConfig, SyncSgdConfig};
use nadmm_cluster::NetworkModel;
use nadmm_data::SyntheticConfig;
use nadmm_experiment::{ClusterSpec, DataSpec, PartitionSpec, ScenarioSpec, SolverSpec};
use newton_admm::NewtonAdmmConfig;

const SMOKE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/smoke.json");

/// The canonical smoke scenario: mnist-like × 4 ranks, 2 iterations per
/// solver, every solver variant represented.
fn smoke_scenario() -> ScenarioSpec {
    let lambda = 1e-3;
    let dane = DaneConfig {
        max_iters: 2,
        lambda,
        svrg_iters: 10,
        svrg_batch: 8,
        svrg_step: 1e-3,
        ..Default::default()
    };
    ScenarioSpec {
        name: "smoke".into(),
        data: DataSpec::Synthetic {
            config: SyntheticConfig::mnist_like()
                .with_train_size(240)
                .with_test_size(60)
                .with_num_features(16),
            seed: 42,
        },
        partition: PartitionSpec::Strong,
        cluster: ClusterSpec::new(4, NetworkModel::infiniband_100g()),
        solvers: vec![
            SolverSpec::NewtonAdmm(NewtonAdmmConfig::default().with_max_iters(2).with_lambda(lambda)),
            SolverSpec::Giant(GiantConfig {
                max_iters: 2,
                lambda,
                ..Default::default()
            }),
            SolverSpec::InexactDane(dane),
            SolverSpec::Aide(AideConfig {
                dane,
                tau: 0.5,
                zeta: 0.5,
            }),
            SolverSpec::Disco(DiscoConfig {
                max_iters: 2,
                lambda,
                ..Default::default()
            }),
            SolverSpec::SyncSgdGrid {
                base: SyncSgdConfig {
                    epochs: 2,
                    lambda,
                    batch_size: 16,
                    ..Default::default()
                },
                grid: vec![1e-2, 0.5],
            },
        ],
    }
}

#[test]
fn committed_smoke_scenario_matches_the_canonical_definition() {
    let committed = std::fs::read_to_string(SMOKE_PATH).expect("scenarios/smoke.json exists");
    let parsed = ScenarioSpec::from_json(&committed).expect("smoke scenario parses");
    assert_eq!(
        parsed,
        smoke_scenario(),
        "scenarios/smoke.json diverged from the canonical definition"
    );
    parsed.to_experiment().validate().expect("smoke scenario validates");
}

#[test]
fn smoke_scenario_runs_and_reports_validate() {
    let reports = smoke_scenario().run().expect("smoke scenario runs");
    assert_eq!(reports.len(), 6);
    for report in &reports {
        report.validate_schema().unwrap_or_else(|e| panic!("{}: {e}", report.solver));
        assert_eq!(report.num_workers, 4);
        assert_eq!(
            report.history.len(),
            3,
            "{}: 2 iterations + the initial record",
            report.solver
        );
    }
    let names: Vec<&str> = reports.iter().map(|r| r.solver.as_str()).collect();
    assert_eq!(names, ["newton-admm", "giant", "inexact-dane", "aide", "disco", "sync-sgd"]);
}

/// Rewrites the committed smoke scenario from the canonical definition when
/// `NADMM_REGEN_GOLDEN=1`; a no-op otherwise.
#[test]
fn regenerate_smoke_scenario_when_requested() {
    if std::env::var("NADMM_REGEN_GOLDEN").ok().as_deref() == Some("1") {
        std::fs::write(
            SMOKE_PATH,
            smoke_scenario().to_json().expect("smoke scenario is finite") + "\n",
        )
        .expect("smoke scenario writes");
    }
}
