//! Ablation of the ADMM penalty-selection rule: fixed ρ vs residual balancing
//! vs the paper's spectral (ACADMM) rule, on an ill-conditioned CIFAR-10-like
//! problem where the choice matters most.
//!
//! Run with:
//! ```text
//! cargo run --release --example penalty_rules
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    let workers = 4;
    let lambda = 1e-5;
    let iters = 25;
    let (train, test) = SyntheticConfig::cifar10_like()
        .with_train_size(1_200)
        .with_test_size(300)
        .with_num_features(64)
        .generate(17);
    let (shards, _) = partition_strong(&train, workers);
    let cluster = Cluster::new(workers, NetworkModel::infiniband_100g());

    let rules: Vec<(&str, PenaltyRule)> = vec![
        ("fixed rho=1", PenaltyRule::Fixed),
        ("residual balancing", PenaltyRule::ResidualBalancing { mu: 10.0, tau: 2.0 }),
        ("spectral (paper)", PenaltyRule::Spectral(SpectralConfig::default())),
    ];

    let mut table = TextTable::new(
        format!("Penalty-rule ablation on cifar10-like ({workers} workers, {iters} iterations)"),
        &[
            "rule",
            "final objective",
            "test acc",
            "mean rho (final)",
            "iters to 90% of best drop",
        ],
    );

    let mut best_drop = f64::MAX;
    let mut runs = Vec::new();
    for (name, rule) in &rules {
        let cfg = NewtonAdmmConfig::default()
            .with_lambda(lambda)
            .with_max_iters(iters)
            .with_penalty(*rule);
        let out = NewtonAdmm::new(cfg).run_cluster(&cluster, &shards, Some(&test));
        best_drop = best_drop.min(out.history.final_objective().unwrap());
        runs.push((name.to_string(), out));
    }

    for (name, out) in &runs {
        let first = out.history.records[0].objective;
        let target = first - 0.9 * (first - best_drop);
        let iters_to_target = out
            .history
            .iterations_to_objective(target)
            .map(|i| i.to_string())
            .unwrap_or_else(|| "-".to_string());
        table.add_row(&[
            name.clone(),
            format!("{:.4}", out.history.final_objective().unwrap()),
            out.history
                .final_accuracy()
                .map(|a| format!("{:.1}%", 100.0 * a))
                .unwrap_or_default(),
            out.history
                .records
                .last()
                .and_then(|r| r.mean_rho)
                .map(|r| format!("{r:.3}"))
                .unwrap_or_default(),
            iters_to_target,
        ]);
    }
    println!("{}", table.to_text());
}
