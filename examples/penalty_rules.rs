//! Ablation of the ADMM penalty-selection rule: fixed ρ vs residual balancing
//! vs the paper's spectral (ACADMM) rule, on an ill-conditioned CIFAR-10-like
//! problem where the choice matters most. The three variants are three
//! `SolverSpec::NewtonAdmm` entries of one experiment.
//!
//! Run with:
//! ```text
//! cargo run --release --example penalty_rules
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    let workers = 4;
    let lambda = 1e-5;
    let iters = 25;

    let rules: Vec<(&str, PenaltyRule)> = vec![
        ("fixed rho=1", PenaltyRule::Fixed),
        ("residual balancing", PenaltyRule::ResidualBalancing { mu: 10.0, tau: 2.0 }),
        ("spectral (paper)", PenaltyRule::Spectral(SpectralConfig::default())),
    ];

    let reports = Experiment::new()
        .with_data_spec(DataSpec::Synthetic {
            config: SyntheticConfig::cifar10_like()
                .with_train_size(1_200)
                .with_test_size(300)
                .with_num_features(64),
            seed: 17,
        })
        .with_cluster(ClusterSpec::new(workers, NetworkModel::infiniband_100g()))
        .with_solvers(rules.iter().map(|(_, rule)| {
            SolverSpec::NewtonAdmm(
                NewtonAdmmConfig::default()
                    .with_lambda(lambda)
                    .with_max_iters(iters)
                    .with_penalty(*rule),
            )
        }))
        .run()
        .expect("ablation runs");

    let best_drop = reports.iter().map(|r| r.final_objective.unwrap()).fold(f64::MAX, f64::min);

    let mut table = TextTable::new(
        format!("Penalty-rule ablation on cifar10-like ({workers} workers, {iters} iterations)"),
        &[
            "rule",
            "final objective",
            "test acc",
            "mean rho (final)",
            "iters to 90% of best drop",
        ],
    );
    for ((name, _), report) in rules.iter().zip(&reports) {
        let first = report.history.records[0].objective;
        let target = first - 0.9 * (first - best_drop);
        let iters_to_target = report
            .history
            .iterations_to_objective(target)
            .map(|i| i.to_string())
            .unwrap_or_else(|| "-".to_string());
        table.add_row(&[
            name.to_string(),
            format!("{:.4}", report.final_objective.unwrap()),
            report.final_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            report
                .history
                .records
                .last()
                .and_then(|r| r.mean_rho)
                .map(|r| format!("{r:.3}"))
                .unwrap_or_default(),
            iters_to_target,
        ]);
    }
    println!("{}", table.to_text());
}
