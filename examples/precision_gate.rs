//! Reduced-precision acceptance gate: compressed collectives and quantized
//! model artifacts must pay their way without giving up accuracy.
//!
//! Takes a scenario whose cluster opts into gradient compression
//! (`scenarios/compressed.json`, `"compression": "f16"`) and runs it twice —
//! once as committed and once with compression forced off — then gates:
//!
//! 1. **Wire bytes** — the compressed run moves ≤ half the on-wire bytes of
//!    the uncompressed run (f16 payloads are 2 of 8 bytes per element, so
//!    the observed ratio is ~4×), while the *logical* byte counts of the two
//!    runs are identical.
//! 2. **Communication time** — the simulated comm time strictly drops.
//! 3. **Training accuracy** — half-precision gradient exchange shifts the
//!    final test accuracy by at most 2 percentage points.
//! 4. **Artifact precision** — the trained iterate is exported at f64 and
//!    f16; the f16 file must be less than half the f64 file's size and the
//!    reloaded f16 model must serve held-out accuracy within 0.1%
//!    (absolute) of the f64 model's.
//!
//! Any missed gate exits non-zero; CI runs this as part of the scenario
//! smoke job.
//!
//! ```text
//! cargo run --release --example precision_gate -- scenarios/compressed.json
//! ```

use newton_admm_repro::prelude::*;
use std::cmp::Ordering;
use std::process::ExitCode;

/// Gate 1: compressed wire bytes must be at most this fraction of the
/// uncompressed run's.
const WIRE_BYTES_GATE: f64 = 0.5;
/// Gate 3: max absolute shift in final test accuracy from compressed
/// training (2 percentage points).
const TRAIN_ACCURACY_GATE: f64 = 0.02;
/// Gate 4: max absolute served-accuracy delta between the f16 and f64
/// artifacts (0.1%).
const SERVE_ACCURACY_GATE: f64 = 0.001;

fn file_len(path: &str) -> Result<u64, String> {
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| format!("cannot stat {path}: {e}"))
}

/// `value ≤ bound`, where NaN counts as a miss (so a poisoned metric can
/// never slip through a gate).
fn within(value: f64, bound: f64) -> bool {
    matches!(value.partial_cmp(&bound), Some(Ordering::Less | Ordering::Equal))
}

/// `value < bound`, where NaN counts as a miss.
fn strictly_below(value: f64, bound: f64) -> bool {
    value.partial_cmp(&bound) == Some(Ordering::Less)
}

fn run(scenario_path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(scenario_path).map_err(|e| format!("cannot read {scenario_path}: {e}"))?;
    let scenario = ScenarioSpec::from_json(&json).map_err(|e| format!("cannot parse {scenario_path}: {e}"))?;
    if scenario.cluster.compression == Compression::None {
        return Err(format!(
            "scenario `{}` does not enable gradient compression; this gate needs `cluster.compression` set",
            scenario.name
        ));
    }
    let mut full_width = scenario.clone();
    full_width.cluster.compression = Compression::None;

    println!(
        "scenario `{}`: {} solver(s) on {} ranks, compression {} vs none …",
        scenario.name,
        scenario.solvers.len(),
        scenario.cluster.ranks,
        scenario.cluster.compression.name(),
    );
    let compressed = scenario.run().map_err(|e| format!("compressed run failed: {e}"))?;
    let baseline = full_width.run().map_err(|e| format!("full-width run failed: {e}"))?;

    // ── Gates 1–3, per solver ────────────────────────────────────────────
    let mut table = TextTable::new(
        format!(
            "compressed ({}) vs full-width collectives",
            scenario.cluster.compression.name()
        ),
        &[
            "solver",
            "wire bytes",
            "full-width bytes",
            "ratio",
            "comm time ratio",
            "test acc Δ",
        ],
    );
    for (comp, full) in compressed.iter().zip(&baseline) {
        if comp.solver != full.solver {
            return Err(format!("report order diverged: `{}` vs `{}`", comp.solver, full.solver));
        }
        let (cs, fs) = (&comp.comm_stats, &full.comm_stats);
        // The compression layer must not change *what* is communicated —
        // only how many bytes it costs on the wire.
        if cs.logical_bytes_sent != fs.logical_bytes_sent {
            return Err(format!(
                "`{}`: logical bytes diverged ({} compressed vs {} full-width) — compression must be transparent",
                comp.solver, cs.logical_bytes_sent, fs.logical_bytes_sent
            ));
        }
        let byte_ratio = cs.bytes_sent / fs.bytes_sent;
        let time_ratio = cs.comm_time / fs.comm_time;
        let acc_delta = match (comp.final_accuracy, full.final_accuracy) {
            (Some(c), Some(f)) => Some(c - f),
            _ => None,
        };
        table.add_row(&[
            comp.solver.clone(),
            format!("{:.0}", cs.bytes_sent),
            format!("{:.0}", fs.bytes_sent),
            format!("{byte_ratio:.3}"),
            format!("{time_ratio:.3}"),
            acc_delta.map(|d| format!("{:+.2}%", 100.0 * d)).unwrap_or_default(),
        ]);
        if !within(byte_ratio, WIRE_BYTES_GATE) {
            return Err(format!(
                "`{}`: compressed wire bytes are {byte_ratio:.3}× the full-width run's (gate: ≤ {WIRE_BYTES_GATE})",
                comp.solver
            ));
        }
        if !strictly_below(time_ratio, 1.0) {
            return Err(format!(
                "`{}`: compressed comm time is {time_ratio:.3}× the full-width run's (gate: strictly < 1)",
                comp.solver
            ));
        }
        if let Some(delta) = acc_delta {
            if !within(delta.abs(), TRAIN_ACCURACY_GATE) {
                return Err(format!(
                    "`{}`: compressed training shifted test accuracy by {:+.2}% (gate: ≤ {:.0}%)",
                    comp.solver,
                    100.0 * delta,
                    100.0 * TRAIN_ACCURACY_GATE
                ));
            }
        }
    }
    println!("{}", table.to_text());

    // ── Gate 4: f16 artifact serves within 0.1% of f64 ───────────────────
    // Export the full-width run's first iterate both ways; the scenario's
    // test split is the serving set and the P100 the serving device.
    let report = &baseline[0];
    let f64_path = "target/precision_gate_f64.nadmm";
    let f16_path = "target/precision_gate_f16.nadmm";
    let artifact = artifact_for_scenario(&full_width, report).map_err(|e| format!("cannot export the model artifact: {e}"))?;
    artifact.save(f64_path).map_err(|e| format!("cannot save {f64_path}: {e}"))?;
    artifact
        .clone()
        .with_weight_encoding(TensorEncoding::F16)
        .map_err(|e| format!("cannot encode the weights as f16: {e}"))?
        .save(f16_path)
        .map_err(|e| format!("cannot save {f16_path}: {e}"))?;

    let (f64_len, f16_len) = (file_len(f64_path)?, file_len(f16_path)?);
    if !strictly_below(f16_len as f64, 0.5 * f64_len as f64) {
        return Err(format!(
            "f16 artifact is {f16_len} bytes vs {f64_len} for f64 (gate: strictly less than half)"
        ));
    }

    let (_, test) = scenario
        .data
        .load()
        .map_err(|e| format!("cannot reload the scenario data: {e}"))?;
    let test = test.ok_or("the scenario has no test split (the serving gate needs one)")?;
    let device = DeviceSpec::tesla_p100();
    let mut served = Vec::new();
    for path in [f64_path, f16_path] {
        let loaded = ModelArtifact::load(path).map_err(|e| format!("cannot reload {path}: {e}"))?;
        let mut session = InferenceSession::new(&loaded, device).map_err(|e| format!("cannot build a session: {e}"))?;
        served.push(session.accuracy(&test));
    }
    let (acc_f64, acc_f16) = (served[0], served[1]);
    println!(
        "artifacts: f64 {f64_len} B → {:.2}% held-out, f16 {f16_len} B ({:.2}× smaller) → {:.2}% held-out",
        100.0 * acc_f64,
        f64_len as f64 / f16_len as f64,
        100.0 * acc_f16
    );
    if !within((acc_f16 - acc_f64).abs(), SERVE_ACCURACY_GATE) {
        return Err(format!(
            "f16 artifact serves {:.3}% vs {:.3}% for f64 (gate: within {:.1}% absolute)",
            100.0 * acc_f16,
            100.0 * acc_f64,
            100.0 * SERVE_ACCURACY_GATE
        ));
    }

    println!(
        "PASS: wire bytes ≤ {WIRE_BYTES_GATE}× full-width, comm time strictly down, \
         f16 artifact < half size within {:.1}% accuracy",
        100.0 * SERVE_ACCURACY_GATE
    );
    Ok(())
}

fn main() -> ExitCode {
    let scenario_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios/compressed.json".to_string());
    match run(&scenario_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("precision_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
