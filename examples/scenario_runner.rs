//! Executes a JSON scenario spec end-to-end: parse → validate → run every
//! solver → write the `RunReport`s as JSON → re-read and schema-check them.
//!
//! This is the CI smoke entry point (`scenarios/smoke.json`): any parse
//! failure, run failure, or schema-invalid report exits non-zero.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_runner -- scenarios/smoke.json \
//!     [--out PATH] [--save-model MODEL.nadmm] [--precision f16] [--deterministic]
//! ```
//!
//! `--deterministic` zeroes the host wall-clock fields of every report
//! before writing, so two runs of the same scenario with the same seeds
//! emit **byte-identical** files — the CI heterogeneity job diffs exactly
//! that.
//!
//! `--save-model PATH` additionally persists the *first* solver's trained
//! iterate as a versioned `.nadmm` model artifact (plus its provenance
//! sidecar `PATH.json`), ready for `examples/serve_bench.rs` or any
//! `nadmm_serve::ModelRegistry` to reload and serve.
//!
//! `--precision ENC` (requires `--save-model`) stores the weights in a
//! reduced encoding — `f32`, `f16`, `bf16`, or `qi8` — shrinking the
//! artifact up to 8× at a bounded accuracy cost. The default `f64` keeps
//! the trained iterate bit-for-bit.

use newton_admm_repro::prelude::*;
use std::process::ExitCode;

fn run(
    scenario_path: &str,
    out_path: &str,
    save_model: Option<&str>,
    precision: TensorEncoding,
    deterministic: bool,
) -> Result<(), String> {
    let json = std::fs::read_to_string(scenario_path).map_err(|e| format!("cannot read {scenario_path}: {e}"))?;
    let scenario = ScenarioSpec::from_json(&json).map_err(|e| format!("cannot parse {scenario_path}: {e}"))?;
    println!(
        "scenario `{}`: {} on {} ranks, {} solver(s)",
        scenario.name,
        scenario.data.describe(),
        scenario.cluster.ranks,
        scenario.solvers.len()
    );

    let mut reports = scenario.run().map_err(|e| format!("scenario failed: {e}"))?;
    if let Some(model_path) = save_model {
        // Export the first solver's trained iterate as a versioned model
        // artifact; any dimension lie or unwritable path is a hard failure.
        let artifact = artifact_for_scenario(&scenario, &reports[0])
            .map_err(|e| format!("cannot build a model artifact from `{}`: {e}", reports[0].solver))?
            .with_weight_encoding(precision)
            .map_err(|e| format!("cannot encode the weights as {}: {e}", precision.name()))?;
        artifact
            .save(model_path)
            .map_err(|e| format!("cannot save the model artifact: {e}"))?;
        println!(
            "saved `{}` model ({} features × {} classes, {} weights, scenario {}) → {model_path} (+ sidecar {})",
            artifact.provenance.solver,
            artifact.num_features,
            artifact.num_classes,
            artifact.weight_encoding.name(),
            artifact.provenance.scenario_hash.as_deref().unwrap_or("?"),
            ModelArtifact::sidecar_path(model_path),
        );
    }
    if deterministic {
        // Everything in a report is a deterministic function of the
        // scenario except the host wall clock; zero it so same-seed runs
        // are byte-identical.
        for report in reports.iter_mut() {
            report.wall_time_sec = 0.0;
            for record in report.history.records.iter_mut() {
                record.wall_time_sec = 0.0;
            }
        }
    }

    // Archive the reports, then *re-read the file* and validate what was
    // actually written — the schema gate must see the bytes on disk.
    let serialized = serde_json::to_string_pretty(&reports).map_err(|e| format!("cannot serialize reports: {e}"))?;
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(out_path, &serialized).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let reread = std::fs::read_to_string(out_path).map_err(|e| format!("cannot re-read {out_path}: {e}"))?;
    let parsed: Vec<RunReport> = serde_json::from_str(&reread).map_err(|e| format!("emitted report JSON does not parse: {e}"))?;
    if parsed.len() != scenario.solvers.len() {
        return Err(format!(
            "expected {} reports, the file holds {}",
            scenario.solvers.len(),
            parsed.len()
        ));
    }
    for report in &parsed {
        report
            .validate_schema()
            .map_err(|e| format!("schema-invalid report for `{}`: {e}", report.solver))?;
    }

    let mut table = TextTable::new(
        format!(
            "scenario `{}` — {} validated report(s) → {out_path}",
            scenario.name,
            parsed.len()
        ),
        &[
            "solver",
            "final objective",
            "test acc",
            "sim time (s)",
            "collectives",
            "rank imbalance",
        ],
    );
    for r in &parsed {
        table.add_row(&[
            r.solver.clone(),
            format!("{:.4}", r.final_objective.unwrap()),
            r.final_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            format!("{:.5}", r.total_sim_time_sec),
            r.comm_stats.collectives.to_string(),
            r.rank_skew
                .as_ref()
                .map(|s| format!("{:.2}×", s.compute_imbalance()))
                .unwrap_or_default(),
        ]);
    }
    println!("{}", table.to_text());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut out_path = "target/scenario_report.json".to_string();
    let mut save_model: Option<String> = None;
    let mut precision: Option<TensorEncoding> = None;
    let mut deterministic = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--save-model" => match it.next() {
                Some(p) => save_model = Some(p),
                None => {
                    eprintln!("--save-model requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--precision" => match it.next() {
                Some(value) => match TensorEncoding::parse(&value) {
                    Some(enc) => precision = Some(enc),
                    None => {
                        eprintln!(
                            "--precision got unknown encoding `{value}`; accepted: {}",
                            TensorEncoding::ACCEPTED_SPELLINGS
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--precision requires an encoding: {}", TensorEncoding::ACCEPTED_SPELLINGS);
                    return ExitCode::FAILURE;
                }
            },
            "--deterministic" => deterministic = true,
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag `{flag}`\nusage: scenario_runner [SCENARIO.json] [--out REPORT.json] [--save-model MODEL.nadmm] [--precision ENC] [--deterministic]"
                );
                return ExitCode::FAILURE;
            }
            path => {
                if let Some(first) = &scenario_path {
                    eprintln!("unexpected extra argument `{path}` (scenario is already `{first}`)");
                    return ExitCode::FAILURE;
                }
                scenario_path = Some(path.to_string());
            }
        }
    }
    if precision.is_some() && save_model.is_none() {
        eprintln!("--precision only affects the saved artifact; pass --save-model PATH as well");
        return ExitCode::FAILURE;
    }
    let scenario_path = scenario_path.unwrap_or_else(|| "scenarios/smoke.json".to_string());
    let precision = precision.unwrap_or(TensorEncoding::F64);
    match run(&scenario_path, &out_path, save_model.as_deref(), precision, deterministic) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scenario_runner: {e}");
            ExitCode::FAILURE
        }
    }
}
