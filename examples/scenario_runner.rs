//! Executes a JSON scenario spec end-to-end: parse → validate → run every
//! solver → write the `RunReport`s as JSON → re-read and schema-check them.
//!
//! This is the CI smoke entry point (`scenarios/smoke.json`): any parse
//! failure, run failure, or schema-invalid report exits non-zero.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_runner -- scenarios/smoke.json \
//!     [--out PATH] [--save-model MODEL.nadmm] [--precision f16] [--deterministic] \
//!     [--transport thread|tcp] [--rank N --peers host:port,...]
//! ```
//!
//! `--deterministic` zeroes the host wall-clock fields of every report
//! before writing, so two runs of the same scenario with the same seeds
//! emit **byte-identical** files — the CI heterogeneity job diffs exactly
//! that.
//!
//! `--transport` selects the collective substrate (flag beats the
//! `NADMM_TRANSPORT` env var, which beats the scenario's `cluster.transport`
//! field). `thread` is the in-process simulated cluster. `tcp` runs every
//! rank as its **own OS process** over loopback sockets: without `--rank`
//! this process is the launcher — it reserves one port per rank, spawns one
//! child per rank (`--rank N --peers ...`), and waits for all of them; with
//! `--rank N` it is rank `N` of the mesh (only rank 0 writes reports).
//! Billing is model-driven, never wall-clock, so the TCP reports are
//! byte-identical to the thread ones under `--deterministic`.
//!
//! `--save-model PATH` additionally persists the *first* solver's trained
//! iterate as a versioned `.nadmm` model artifact (plus its provenance
//! sidecar `PATH.json`), ready for `examples/serve_bench.rs` or any
//! `nadmm_serve::ModelRegistry` to reload and serve.
//!
//! `--precision ENC` (requires `--save-model`) stores the weights in a
//! reduced encoding — `f32`, `f16`, `bf16`, or `qi8` — shrinking the
//! artifact up to 8× at a bounded accuracy cost. The default `f64` keeps
//! the trained iterate bit-for-bit.
//!
//! `--trace PATH` (or the `NADMM_TRACE` env var; the flag wins) enables the
//! span tracer for the run and writes a Chrome trace-event JSON to `PATH` —
//! load it at `ui.perfetto.dev`. One pid per rank, timestamps on the
//! *simulated* clock, so with `--deterministic` two runs emit byte-identical
//! trace files. The reports additionally embed a per-rank flat profile.
//! Tracing needs every rank in this process: combined with the tcp
//! transport it is a hard error.

use newton_admm_repro::prelude::*;
use std::process::ExitCode;

/// Everything the CLI resolves before the run starts.
struct Options {
    scenario_path: String,
    out_path: String,
    save_model: Option<String>,
    precision: TensorEncoding,
    deterministic: bool,
    transport: Option<TransportKind>,
    rank: Option<usize>,
    peers: Option<Vec<String>>,
    trace: Option<String>,
}

/// Runs the scenario's solvers on this process: on the thread transport all
/// ranks live here; on TCP this process is exactly one rank of the mesh.
/// Returns `None` for non-root TCP ranks, which emit no reports.
fn execute(scenario: &ScenarioSpec, opts: &Options) -> Result<Option<Vec<RunReport>>, String> {
    let kind = opts
        .transport
        .or_else(TransportKind::from_env)
        .unwrap_or_else(|| scenario.cluster.transport.kind());
    match kind {
        TransportKind::Thread => {
            if opts.rank.is_some() {
                return Err("--rank only applies to the tcp transport".into());
            }
            scenario.run().map(Some).map_err(|e| format!("scenario failed: {e}"))
        }
        TransportKind::Tcp => {
            let rank = opts.rank.expect("the launcher handles rank-less tcp runs");
            let peers = match (&opts.peers, &scenario.cluster.transport) {
                (Some(peers), _) => peers.clone(),
                (None, TransportSpec::Tcp { peers }) => peers.clone(),
                (None, _) => return Err("tcp rank needs --peers (or peers in the scenario's cluster.transport)".into()),
            };
            if peers.len() != scenario.cluster.ranks {
                return Err(format!(
                    "got {} peer addresses for {} ranks",
                    peers.len(),
                    scenario.cluster.ranks
                ));
            }
            if rank >= peers.len() {
                return Err(format!("--rank {rank} is outside the {}-rank mesh", peers.len()));
            }
            let transport = TcpTransport::connect(rank, &peers).map_err(|e| format!("tcp bootstrap failed: {e}"))?;
            scenario
                .run_with_transport(Box::new(transport))
                .map_err(|e| format!("scenario failed on rank {rank}: {e}"))
        }
    }
}

/// TCP launcher: reserve one loopback port per rank, spawn one child process
/// per rank with `--rank N --peers ...` (rank 0 keeps the output flags), and
/// wait for the whole fleet.
fn launch_tcp_fleet(scenario: &ScenarioSpec, opts: &Options) -> Result<(), String> {
    let ranks = scenario.cluster.ranks;
    let peers = match (&opts.peers, &scenario.cluster.transport) {
        (Some(peers), _) => peers.clone(),
        (None, TransportSpec::Tcp { peers }) if !peers.is_empty() => peers.clone(),
        (None, _) => reserve_loopback_peers(ranks).map_err(|e| format!("cannot reserve loopback ports: {e}"))?,
    };
    if peers.len() != ranks {
        return Err(format!("got {} peer addresses for {ranks} ranks", peers.len()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate this executable: {e}"))?;
    println!("launching {ranks} tcp ranks on {}", peers.join(", "));
    let mut children = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg(&opts.scenario_path)
            .arg("--transport")
            .arg("tcp")
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--peers")
            .arg(peers.join(","));
        if opts.deterministic {
            cmd.arg("--deterministic");
        }
        if rank == 0 {
            cmd.arg("--out").arg(&opts.out_path);
            if let Some(model_path) = &opts.save_model {
                cmd.arg("--save-model").arg(model_path);
                cmd.arg("--precision").arg(opts.precision.name());
            }
        }
        let child = cmd.spawn().map_err(|e| format!("cannot spawn rank {rank}: {e}"))?;
        children.push((rank, child));
    }
    let mut failed = Vec::new();
    for (rank, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failed.push(format!("rank {rank} exited with {status}")),
            Err(e) => failed.push(format!("rank {rank} could not be awaited: {e}")),
        }
    }
    if failed.is_empty() {
        Ok(())
    } else {
        Err(failed.join("; "))
    }
}

fn run(opts: &Options) -> Result<(), String> {
    let json = std::fs::read_to_string(&opts.scenario_path).map_err(|e| format!("cannot read {}: {e}", opts.scenario_path))?;
    let scenario = ScenarioSpec::from_json(&json).map_err(|e| format!("cannot parse {}: {e}", opts.scenario_path))?;

    // A rank-less tcp invocation is the multi-process launcher, not a rank.
    let kind = opts
        .transport
        .or_else(TransportKind::from_env)
        .unwrap_or_else(|| scenario.cluster.transport.kind());
    if opts.trace.is_some() {
        if kind == TransportKind::Tcp {
            return Err(
                "--trace / NADMM_TRACE requires the thread transport: the tracer collects every \
                 rank in this process, and tcp ranks live in their own processes"
                    .into(),
            );
        }
        newton_admm_repro::trace::set_enabled(true);
    }
    if kind == TransportKind::Tcp && opts.rank.is_none() {
        return launch_tcp_fleet(&scenario, opts);
    }

    println!(
        "scenario `{}`: {} on {} ranks, {} solver(s) [{} transport]",
        scenario.name,
        scenario.data.describe(),
        scenario.cluster.ranks,
        scenario.solvers.len(),
        kind.name(),
    );

    let mut reports = match execute(&scenario, opts)? {
        Some(reports) => reports,
        None => {
            // A non-root tcp rank: it contributed to every collective and
            // has nothing to archive.
            println!("rank {} finished", opts.rank.unwrap_or(0));
            return Ok(());
        }
    };
    if let Some(model_path) = &opts.save_model {
        // Export the first solver's trained iterate as a versioned model
        // artifact; any dimension lie or unwritable path is a hard failure.
        // The save runs under its own recorder so the ArtifactIo instant
        // lands in the trace as a dedicated lane (no-op when tracing is off).
        let artifact = artifact_for_scenario(&scenario, &reports[0])
            .map_err(|e| format!("cannot build a model artifact from `{}`: {e}", reports[0].solver))?
            .with_weight_encoding(opts.precision)
            .map_err(|e| format!("cannot encode the weights as {}: {e}", opts.precision.name()))?;
        newton_admm_repro::trace::install(0);
        let saved = artifact.save(model_path);
        if let Some(io_trace) = newton_admm_repro::trace::uninstall() {
            newton_admm_repro::trace::sink_deposit("artifact-io", vec![io_trace]);
        }
        saved.map_err(|e| format!("cannot save the model artifact: {e}"))?;
        println!(
            "saved `{}` model ({} features × {} classes, {} weights, scenario {}) → {model_path} (+ sidecar {})",
            artifact.provenance.solver,
            artifact.num_features,
            artifact.num_classes,
            artifact.weight_encoding.name(),
            artifact.provenance.scenario_hash.as_deref().unwrap_or("?"),
            ModelArtifact::sidecar_path(model_path),
        );
    }
    if opts.deterministic {
        // Everything in a report is a deterministic function of the
        // scenario except the host wall clock; zero it so same-seed runs
        // are byte-identical.
        for report in reports.iter_mut() {
            report.wall_time_sec = 0.0;
            for record in report.history.records.iter_mut() {
                record.wall_time_sec = 0.0;
            }
        }
    }

    // Archive the reports, then *re-read the file* and validate what was
    // actually written — the schema gate must see the bytes on disk.
    let serialized = serde_json::to_string_pretty(&reports).map_err(|e| format!("cannot serialize reports: {e}"))?;
    let out_path = &opts.out_path;
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(out_path, &serialized).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let reread = std::fs::read_to_string(out_path).map_err(|e| format!("cannot re-read {out_path}: {e}"))?;
    let parsed: Vec<RunReport> = serde_json::from_str(&reread).map_err(|e| format!("emitted report JSON does not parse: {e}"))?;
    if parsed.len() != scenario.solvers.len() {
        return Err(format!(
            "expected {} reports, the file holds {}",
            scenario.solvers.len(),
            parsed.len()
        ));
    }
    for report in &parsed {
        report
            .validate_schema()
            .map_err(|e| format!("schema-invalid report for `{}`: {e}", report.solver))?;
    }

    if let Some(trace_path) = &opts.trace {
        // One lane per solver run (deposited by the experiment layer) plus
        // the artifact-io lane when a model was saved. Validate the emitted
        // JSON before calling the run a success — a trace no tool can load
        // is a bug, not an artifact.
        let lanes = newton_admm_repro::trace::sink_drain();
        if lanes.is_empty() {
            return Err("--trace was set but no trace lanes were recorded".into());
        }
        let chrome = export_chrome_trace(&lanes, opts.deterministic);
        let value = serde_json::parse_value(&chrome).map_err(|e| format!("emitted Chrome trace does not parse as JSON: {e}"))?;
        let stats = validate_chrome_value(&value).map_err(|e| format!("emitted Chrome trace is malformed: {e}"))?;
        if let Some(parent) = std::path::Path::new(trace_path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(trace_path, &chrome).map_err(|e| format!("cannot write {trace_path}: {e}"))?;
        println!(
            "trace: {} events across {} lane(s)/{} pid(s) → {trace_path} (load at ui.perfetto.dev)",
            stats.event_count,
            lanes.len(),
            stats.pids.len(),
        );
    }

    let mut table = TextTable::new(
        format!(
            "scenario `{}` — {} validated report(s) → {out_path}",
            scenario.name,
            parsed.len()
        ),
        &[
            "solver",
            "final objective",
            "test acc",
            "sim time (s)",
            "collectives",
            "rank imbalance",
        ],
    );
    for r in &parsed {
        table.add_row(&[
            r.solver.clone(),
            format!("{:.4}", r.final_objective.unwrap()),
            r.final_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            format!("{:.5}", r.total_sim_time_sec),
            r.comm_stats.collectives.to_string(),
            r.rank_skew
                .as_ref()
                .map(|s| format!("{:.2}×", s.compute_imbalance()))
                .unwrap_or_default(),
        ]);
    }
    println!("{}", table.to_text());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut out_path = "target/scenario_report.json".to_string();
    let mut save_model: Option<String> = None;
    let mut precision: Option<TensorEncoding> = None;
    let mut deterministic = false;
    let mut transport: Option<TransportKind> = None;
    let mut rank: Option<usize> = None;
    let mut peers: Option<Vec<String>> = None;
    let mut trace: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--save-model" => match it.next() {
                Some(p) => save_model = Some(p),
                None => {
                    eprintln!("--save-model requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--precision" => match it.next() {
                Some(value) => match TensorEncoding::parse(&value) {
                    Some(enc) => precision = Some(enc),
                    None => {
                        eprintln!(
                            "--precision got unknown encoding `{value}`; accepted: {}",
                            TensorEncoding::ACCEPTED_SPELLINGS
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--precision requires an encoding: {}", TensorEncoding::ACCEPTED_SPELLINGS);
                    return ExitCode::FAILURE;
                }
            },
            "--deterministic" => deterministic = true,
            "--transport" => match it.next() {
                Some(value) => match TransportKind::parse(&value) {
                    Some(kind) => transport = Some(kind),
                    None => {
                        eprintln!(
                            "--transport got unknown backend `{value}`; accepted: {}",
                            TransportKind::ACCEPTED_SPELLINGS
                        );
                        return ExitCode::FAILURE;
                    }
                },
                None => {
                    eprintln!("--transport requires a backend: {}", TransportKind::ACCEPTED_SPELLINGS);
                    return ExitCode::FAILURE;
                }
            },
            "--rank" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(r) => rank = Some(r),
                None => {
                    eprintln!("--rank requires a rank number");
                    return ExitCode::FAILURE;
                }
            },
            "--peers" => match it.next() {
                Some(list) => peers = Some(list.split(',').map(|s| s.trim().to_string()).collect()),
                None => {
                    eprintln!("--peers requires a comma-separated host:port list");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => {
                    eprintln!("--trace requires a path for the Chrome trace JSON");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!(
                    "unknown flag `{flag}`\nusage: scenario_runner [SCENARIO.json] [--out REPORT.json] \
                     [--save-model MODEL.nadmm] [--precision ENC] [--deterministic] \
                     [--transport thread|tcp] [--rank N --peers host:port,...] [--trace TRACE.json]"
                );
                return ExitCode::FAILURE;
            }
            path => {
                if let Some(first) = &scenario_path {
                    eprintln!("unexpected extra argument `{path}` (scenario is already `{first}`)");
                    return ExitCode::FAILURE;
                }
                scenario_path = Some(path.to_string());
            }
        }
    }
    if precision.is_some() && save_model.is_none() {
        eprintln!("--precision only affects the saved artifact; pass --save-model PATH as well");
        return ExitCode::FAILURE;
    }
    let opts = Options {
        scenario_path: scenario_path.unwrap_or_else(|| "scenarios/smoke.json".to_string()),
        out_path,
        save_model,
        precision: precision.unwrap_or(TensorEncoding::F64),
        deterministic,
        transport,
        rank,
        peers,
        // The flag wins over the `NADMM_TRACE` env var (whose single parse
        // point lives in `nadmm_trace::env`).
        trace: trace.or_else(|| trace_path_from_env().map(|p| p.display().to_string())),
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scenario_runner: {e}");
            ExitCode::FAILURE
        }
    }
}
