//! Distributed solver shoot-out: every solver of the workspace — Newton-ADMM
//! and the paper's four baselines (plus AIDE and the SGD grid protocol) —
//! runs on one shared problem instance through a single `Experiment`, a
//! miniature of the paper's Figure 1/4 matrix.
//!
//! Run with:
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    let iters = 15;
    let lambda = 1e-4;
    let solvers = vec![
        SolverSpec::NewtonAdmm(NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters)),
        SolverSpec::Giant(GiantConfig {
            max_iters: iters,
            lambda,
            ..Default::default()
        }),
        SolverSpec::InexactDane(DaneConfig {
            max_iters: 5,
            lambda,
            svrg_iters: 60,
            ..Default::default()
        }),
        SolverSpec::Aide(AideConfig {
            dane: DaneConfig {
                max_iters: 5,
                lambda,
                svrg_iters: 60,
                ..Default::default()
            },
            tau: 0.5,
            zeta: 0.5,
        }),
        SolverSpec::Disco(DiscoConfig {
            max_iters: iters,
            lambda,
            ..Default::default()
        }),
        SolverSpec::SyncSgdGrid {
            base: SyncSgdConfig {
                epochs: iters,
                lambda,
                batch_size: 128,
                ..Default::default()
            },
            grid: vec![1e-2, 1e-1, 1.0, 10.0],
        },
    ];

    let reports = Experiment::new()
        .with_data_spec(DataSpec::Synthetic {
            config: SyntheticConfig::mnist_like()
                .with_train_size(1_600)
                .with_test_size(400)
                .with_num_features(48),
            seed: 3,
        })
        .with_cluster(ClusterSpec::new(4, NetworkModel::infiniband_100g()))
        .with_solvers(solvers)
        .run()
        .expect("shoot-out runs");

    let mut table = TextTable::new(
        "Solver shoot-out on mnist-like (4 workers): objective | accuracy | avg epoch | rounds/iter",
        &["solver", "final objective", "test acc", "avg epoch (ms)", "collectives"],
    );
    for r in &reports {
        table.add_row(&[
            r.solver.clone(),
            format!("{:.4}", r.final_objective.unwrap()),
            r.final_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            format!("{:.3}", 1e3 * r.history.avg_epoch_time()),
            r.comm_stats.collectives.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!("Newton-ADMM reaches a competitive objective with the fewest communication rounds per iteration.");
}
