//! Single-node solver shoot-out on the four synthetic dataset analogues:
//! inexact Newton-CG against full-batch first-order methods, reproducing the
//! paper's motivating claim that second-order methods need far fewer
//! iterations to reach a good objective value.
//!
//! Run with:
//! ```text
//! cargo run --release --example solver_shootout
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    let configs = [
        SyntheticConfig::higgs_like()
            .with_train_size(1_000)
            .with_test_size(200)
            .with_num_features(28),
        SyntheticConfig::mnist_like()
            .with_train_size(800)
            .with_test_size(200)
            .with_num_features(64),
        SyntheticConfig::cifar10_like()
            .with_train_size(600)
            .with_test_size(150)
            .with_num_features(96),
        SyntheticConfig::e18_like()
            .with_train_size(600)
            .with_test_size(150)
            .with_num_features(256),
    ];
    let iterations = 15;
    let lambda = 1e-4;

    let mut table = TextTable::new(
        format!("Single-node solvers after {iterations} iterations (objective | test accuracy)"),
        &["dataset", "newton-cg", "gradient descent", "adam"],
    );

    for cfg in configs {
        let (train, test) = cfg.generate(3);
        let obj = SoftmaxCrossEntropy::new(&train, lambda);
        let x0 = vec![0.0; obj.dim()];

        let newton = NewtonCg::new(NewtonConfig {
            max_iters: iterations,
            ..Default::default()
        })
        .minimize(&obj, &x0);
        let gd = nadmm_solver::first_order::minimize(
            &obj,
            &x0,
            &FirstOrderConfig {
                method: FirstOrderMethod::GradientDescent,
                step_size: 1e-4,
                max_iters: iterations,
                ..Default::default()
            },
        );
        let adam = nadmm_solver::first_order::minimize(
            &obj,
            &x0,
            &FirstOrderConfig {
                method: FirstOrderMethod::Adam,
                step_size: 0.05,
                max_iters: iterations,
                ..Default::default()
            },
        );

        let fmt = |value: f64, x: &[f64]| format!("{:.3} | {:.1}%", value, 100.0 * obj.accuracy(&test, x));
        table.add_row(&[
            cfg.kind.paper_name().to_string(),
            fmt(newton.value, &newton.x),
            fmt(gd.value, &gd.x),
            fmt(adam.value, &adam.x),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Newton-CG dominates at equal iteration counts — the motivation for making second-order methods cheap per iteration."
    );
}
