//! Straggler sweep: Newton-ADMM vs exact-averaging baselines under one slow
//! rank.
//!
//! The paper's central claim is that Newton-ADMM tolerates *inexact, uneven
//! local work* far better than methods whose updates require exact
//! synchronized averaging (GIANT, InexactDANE). This example makes that
//! claim measurable on the simulated cluster: it takes a scenario whose
//! straggler model designates one slow rank, sweeps the rank's slowdown
//! factor over {1×, 2×, 4×, 8×}, and reports each solver's **time to
//! target** (simulated seconds until the objective first reaches a target
//! every run attains).
//!
//! Newton-ADMM runs with a bounded-staleness deadline: the slow rank sheds
//! Newton steps to meet it, contributing a staler local solution instead of
//! stalling the fleet — so its time-to-target degrades only mildly as the
//! slow rank gets slower. GIANT and DANE wait for the straggler at every
//! collective, so their time-to-target grows with the slowdown factor. The
//! example **exits non-zero** if Newton-ADMM's degradation is not strictly
//! smaller than GIANT's at every factor (a self-gating acceptance check).
//!
//! Run with:
//! ```text
//! cargo run --release --example straggler_sweep -- scenarios/heterogeneous.json
//! ```

use newton_admm_repro::prelude::*;
use std::process::ExitCode;

const FACTORS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

struct SweepRun {
    solver: String,
    factor: f64,
    history: Vec<(f64, f64)>, // (sim time, objective)
    final_objective: f64,
    skew: Option<RankSkew>,
}

fn run_sweep(scenario: &ScenarioSpec) -> Result<Vec<SweepRun>, String> {
    let straggler = scenario
        .cluster
        .straggler
        .as_ref()
        .ok_or("scenario must define cluster.straggler")?;
    if straggler.slow_ranks.len() != 1 {
        return Err(format!(
            "scenario must designate exactly one slow rank to sweep, found {}",
            straggler.slow_ranks.len()
        ));
    }
    let slow_rank = straggler.slow_ranks[0].rank;
    let mut runs = Vec::new();
    for factor in FACTORS {
        let mut swept = scenario.clone();
        swept.cluster.straggler.as_mut().expect("checked above").slow_ranks[0].factor = factor;
        println!("running `{}` with rank {slow_rank} at {factor}× slowdown …", swept.name);
        let reports = swept.run().map_err(|e| format!("sweep at {factor}× failed: {e}"))?;
        for report in reports {
            runs.push(SweepRun {
                solver: report.solver.clone(),
                factor,
                history: report.history.records.iter().map(|r| (r.sim_time_sec, r.objective)).collect(),
                final_objective: report.final_objective.unwrap_or(f64::INFINITY),
                skew: report.rank_skew,
            });
        }
    }
    Ok(runs)
}

/// The per-solver target: the worst final objective the solver reaches over
/// the whole sweep (so every run of that solver attains it), padded by a
/// hair of floating-point tolerance.
fn target_for(runs: &[SweepRun], solver: &str) -> f64 {
    runs.iter()
        .filter(|r| r.solver == solver)
        .map(|r| r.final_objective)
        .fold(f64::NEG_INFINITY, f64::max)
        * (1.0 + 1e-9)
}

/// Simulated seconds until the run's objective first reaches `target`.
fn time_to_target(run: &SweepRun, target: f64) -> Option<f64> {
    run.history.iter().find(|(_, obj)| *obj <= target).map(|(t, _)| *t)
}

fn main() -> ExitCode {
    let scenario_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "scenarios/heterogeneous.json".to_string());
    let json = match std::fs::read_to_string(&scenario_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {scenario_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match ScenarioSpec::from_json(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {scenario_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let runs = match run_sweep(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("straggler_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    let solvers: Vec<String> = {
        let mut names: Vec<String> = Vec::new();
        for r in &runs {
            if !names.contains(&r.solver) {
                names.push(r.solver.clone());
            }
        }
        names
    };

    // Time-to-target table: one row per slowdown factor, one column pair
    // (seconds, degradation vs 1×) per solver.
    let mut header = vec!["slow-rank factor".to_string()];
    for s in &solvers {
        header.push(format!("{s} t→target (s)"));
        header.push(format!("{s} ×1x"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(
        format!("time to target objective under one slow rank (`{}`)", scenario.name),
        &header_refs,
    );
    let mut baseline: Vec<f64> = vec![f64::NAN; solvers.len()];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); solvers.len()];
    for factor in FACTORS {
        let mut row = vec![format!("{factor}×")];
        for (i, solver) in solvers.iter().enumerate() {
            let target = target_for(&runs, solver);
            let run = runs
                .iter()
                .find(|r| r.solver == *solver && r.factor == factor)
                .expect("every solver ran at every factor");
            match time_to_target(run, target) {
                Some(t) => {
                    if factor == 1.0 {
                        baseline[i] = t;
                    }
                    let ratio = t / baseline[i];
                    ratios[i].push(ratio);
                    row.push(format!("{t:.6}"));
                    row.push(format!("{ratio:.2}×"));
                }
                None => {
                    row.push("never".into());
                    row.push("∞".into());
                    ratios[i].push(f64::INFINITY);
                }
            }
        }
        table.add_row(&row);
    }
    println!("{}", table.to_text());

    // Per-rank skew of the Newton-ADMM runs (the RunReport field this
    // example exists to surface).
    let mut skew_table = TextTable::new(
        "newton-admm per-rank skew".to_string(),
        &["factor", "compute max/min", "max idle wait (s)", "max round skew (s)"],
    );
    for run in runs.iter().filter(|r| r.solver == "newton-admm") {
        let skew = run.skew.as_ref().expect("experiment reports carry rank skew");
        skew_table.add_row(&[
            format!("{}×", run.factor),
            format!("{:.2}×", skew.compute_imbalance()),
            format!("{:.6}", skew.max_idle_wait_sec),
            format!("{:.6}", skew.max_round_skew_sec),
        ]);
    }
    println!("{}", skew_table.to_text());

    // The acceptance gate: Newton-ADMM's time-to-target must degrade
    // strictly less than GIANT's as the slow rank slows down.
    let nadmm = solvers.iter().position(|s| s == "newton-admm");
    let giant = solvers.iter().position(|s| s == "giant");
    match (nadmm, giant) {
        (Some(n), Some(g)) => {
            for (i, factor) in FACTORS.iter().enumerate().skip(1) {
                let (rn, rg) = (ratios[n][i], ratios[g][i]);
                // "Not strictly less" must also trip on NaN, so compare via
                // partial_cmp instead of a negated `<`.
                if rn.partial_cmp(&rg) != Some(std::cmp::Ordering::Less) {
                    eprintln!(
                        "FAIL: at {factor}× slowdown newton-admm degraded {rn:.2}×, \
                         not strictly less than giant's {rg:.2}×"
                    );
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "PASS: newton-admm's time-to-target degrades strictly less than giant's at every factor \
                 (8×: {:.2}× vs {:.2}×)",
                ratios[n][FACTORS.len() - 1],
                ratios[g][FACTORS.len() - 1]
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("scenario must include both newton-admm and giant solvers");
            ExitCode::FAILURE
        }
    }
}
