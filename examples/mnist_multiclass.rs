//! Compare Newton-ADMM with GIANT, InexactDANE and synchronous SGD on the
//! synthetic MNIST analogue — a miniature version of the paper's Figure 1 /
//! Figure 4 workload, expressed as one declarative experiment.
//!
//! Run with:
//! ```text
//! cargo run --release --example mnist_multiclass
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    let lambda = 1e-5;
    let iters = 20;

    let reports = Experiment::new()
        .with_data_spec(DataSpec::Synthetic {
            config: SyntheticConfig::mnist_like()
                .with_train_size(1_600)
                .with_test_size(400)
                .with_num_features(48),
            seed: 7,
        })
        .with_cluster(ClusterSpec::new(4, NetworkModel::infiniband_100g()))
        // Newton-ADMM (the paper's method).
        .with_solver(SolverSpec::NewtonAdmm(
            NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters),
        ))
        // GIANT with the same CG budget and line-search length.
        .with_solver(SolverSpec::Giant(GiantConfig {
            max_iters: iters,
            lambda,
            ..Default::default()
        }))
        // InexactDANE (few iterations — its epoch time is the point).
        .with_solver(SolverSpec::InexactDane(DaneConfig {
            max_iters: 5,
            lambda,
            svrg_iters: 60,
            svrg_step: 1e-3,
            ..Default::default()
        }))
        // Synchronous SGD, batch size 128, best step size from a small grid.
        .with_solver(SolverSpec::SyncSgdGrid {
            base: SyncSgdConfig {
                epochs: iters,
                lambda,
                batch_size: 128,
                ..Default::default()
            },
            grid: vec![1e-2, 1e-1, 1.0, 10.0],
        })
        .run()
        .expect("comparison runs");

    let mut table = TextTable::new(
        "MNIST-like, 4 workers: objective / accuracy / time",
        &[
            "solver",
            "final objective",
            "test acc",
            "avg epoch (ms)",
            "total sim time (s)",
            "bytes/worker",
        ],
    );
    for r in &reports {
        table.add_row(&[
            r.solver.clone(),
            format!("{:.4}", r.final_objective.unwrap()),
            r.final_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            format!("{:.3}", 1e3 * r.history.avg_epoch_time()),
            format!("{:.4}", r.total_sim_time_sec),
            format!("{:.0}", r.comm_stats.bytes_sent),
        ]);
    }
    println!("{}", table.to_text());

    println!(
        "Newton-ADMM reached objective {:.4} in {:.3}s simulated time; GIANT reached {:.4} in {:.3}s.",
        reports[0].final_objective.unwrap(),
        reports[0].total_sim_time_sec,
        reports[1].final_objective.unwrap(),
        reports[1].total_sim_time_sec,
    );
}
