//! Compare Newton-ADMM with GIANT, InexactDANE and synchronous SGD on the
//! synthetic MNIST analogue — a miniature version of the paper's Figure 1 /
//! Figure 4 workload that finishes in well under a minute.
//!
//! Run with:
//! ```text
//! cargo run --release --example mnist_multiclass
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    let workers = 4;
    let lambda = 1e-5;
    let (train, test) = SyntheticConfig::mnist_like()
        .with_train_size(1_600)
        .with_test_size(400)
        .with_num_features(48)
        .generate(7);
    let (shards, _) = partition_strong(&train, workers);
    let cluster = Cluster::new(workers, NetworkModel::infiniband_100g());
    let iters = 20;

    // Newton-ADMM (the paper's method).
    let admm = NewtonAdmm::new(NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters)).run_cluster(
        &cluster,
        &shards,
        Some(&test),
    );

    // GIANT with the same CG budget and line-search length.
    let giant = Giant::new(GiantConfig {
        max_iters: iters,
        lambda,
        ..Default::default()
    })
    .run_cluster(&cluster, &shards, Some(&test));

    // InexactDANE (few iterations — its epoch time is the point).
    let dane = InexactDane::new(DaneConfig {
        max_iters: 5,
        lambda,
        svrg_iters: 60,
        svrg_step: 1e-3,
        ..Default::default()
    })
    .run_cluster(&cluster, &shards, Some(&test));

    // Synchronous SGD, batch size 128, best step size from a small grid.
    let sgd = SyncSgd::new(SyncSgdConfig {
        epochs: iters,
        lambda,
        batch_size: 128,
        ..Default::default()
    })
    .run_cluster_best_of_grid(&cluster, &shards, Some(&test), &[1e-2, 1e-1, 1.0, 10.0]);

    let mut table = TextTable::new(
        "MNIST-like, 4 workers: objective / accuracy / time",
        &[
            "solver",
            "final objective",
            "test acc",
            "avg epoch (ms)",
            "total sim time (s)",
            "bytes/worker",
        ],
    );
    let rows: Vec<(&RunHistory, f64)> = vec![
        (&admm.history, admm.comm_stats.bytes_sent),
        (&giant.history, giant.comm_stats.bytes_sent),
        (&dane.history, dane.comm_stats.bytes_sent),
        (&sgd.history, sgd.comm_stats.bytes_sent),
    ];
    for (run, bytes) in rows {
        table.add_row(&[
            run.solver.clone(),
            format!("{:.4}", run.final_objective().unwrap()),
            run.final_accuracy().map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
            format!("{:.3}", 1e3 * run.avg_epoch_time()),
            format!("{:.4}", run.total_sim_time()),
            format!("{bytes:.0}"),
        ]);
    }
    println!("{}", table.to_text());

    println!(
        "Newton-ADMM reached objective {:.4} in {:.3}s simulated time; GIANT reached {:.4} in {:.3}s.",
        admm.history.final_objective().unwrap(),
        admm.history.total_sim_time(),
        giant.history.final_objective().unwrap(),
        giant.history.total_sim_time(),
    );
}
