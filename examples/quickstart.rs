//! Quickstart: train a multiclass classifier with distributed Newton-ADMM on
//! a synthetic MNIST-like dataset, using the declarative experiment API, and
//! print the convergence history.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    // 1. Describe the data: a synthetic MNIST-like dataset (10 classes, 784
    //    features in the paper; scaled down so the example finishes in
    //    seconds).
    let data = DataSpec::Synthetic {
        config: SyntheticConfig::mnist_like()
            .with_train_size(2_000)
            .with_test_size(400)
            .with_num_features(64),
        seed: 42,
    };

    // 2. Describe the cluster: 4 simulated workers with P100-class
    //    accelerators on a 100 Gbps interconnect, strong-scaling partition.
    let cluster = ClusterSpec::new(4, NetworkModel::infiniband_100g());

    // 3. Configure Newton-ADMM exactly as the paper's Figure 1: λ = 1e-5,
    //    10 CG iterations, spectral penalty selection.
    let config = NewtonAdmmConfig::default().with_lambda(1e-5).with_max_iters(30);

    // 4. Compose and run the experiment. The builder validates every config,
    //    generates and partitions the data, and spawns the cluster.
    let report = Experiment::new()
        .with_data_spec(data)
        .with_partition(PartitionSpec::Strong)
        .with_cluster(cluster)
        .with_solver(SolverSpec::NewtonAdmm(config))
        .run()
        .expect("experiment runs")
        .remove(0);

    println!(
        "dataset: {} ({} workers, {} iterations recorded)",
        report.dataset,
        report.num_workers,
        report.history.len()
    );

    // 5. Report the convergence history from the structured RunReport.
    let mut table = TextTable::new(
        "Newton-ADMM on mnist-like (4 workers)",
        &["iter", "objective", "test acc", "sim time (s)"],
    );
    for r in &report.history.records {
        if r.iteration % 5 == 0 || r.iteration == report.history.records.len() - 1 {
            table.add_row(&[
                r.iteration.to_string(),
                format!("{:.4}", r.objective),
                r.test_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
                format!("{:.4}", r.sim_time_sec),
            ]);
        }
    }
    println!("{}", table.to_text());
    println!(
        "final objective {:.4}, final accuracy {:.1}%, avg epoch time {:.2} ms, {} bytes sent per worker",
        report.final_objective.unwrap(),
        100.0 * report.final_accuracy.unwrap(),
        1e3 * report.history.avg_epoch_time(),
        report.comm_stats.bytes_sent,
    );
}
