//! Quickstart: train a multiclass classifier with distributed Newton-ADMM on
//! a synthetic MNIST-like dataset and print the convergence history.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use newton_admm_repro::prelude::*;

fn main() {
    // 1. Generate a synthetic MNIST-like dataset (10 classes, 784 features in
    //    the paper; scaled down here so the example finishes in seconds).
    let (train, test) = SyntheticConfig::mnist_like()
        .with_train_size(2_000)
        .with_test_size(400)
        .with_num_features(64)
        .generate(42);
    println!(
        "dataset: {} train samples, {} features, {} classes",
        train.num_samples(),
        train.num_features(),
        train.num_classes()
    );

    // 2. Split the data across 4 simulated workers (strong scaling).
    let workers = 4;
    let (shards, plan) = partition_strong(&train, workers);
    println!("partition: {:?} samples per worker ({})", plan.samples_per_worker, plan.mode);

    // 3. Configure Newton-ADMM exactly as the paper's Figure 1: λ = 1e-5,
    //    10 CG iterations, spectral penalty selection.
    let config = NewtonAdmmConfig::default().with_lambda(1e-5).with_max_iters(30);
    let solver = NewtonAdmm::new(config);

    // 4. Run on a simulated 4-node cluster with a 100 Gbps interconnect and
    //    P100-class accelerators.
    let cluster = Cluster::new(workers, NetworkModel::infiniband_100g());
    let out = solver.run_cluster(&cluster, &shards, Some(&test));

    // 5. Report the convergence history.
    let mut table = TextTable::new(
        "Newton-ADMM on mnist-like (4 workers)",
        &["iter", "objective", "test acc", "sim time (s)"],
    );
    for r in &out.history.records {
        if r.iteration % 5 == 0 || r.iteration == out.history.records.len() - 1 {
            table.add_row(&[
                r.iteration.to_string(),
                format!("{:.4}", r.objective),
                r.test_accuracy.map(|a| format!("{:.1}%", 100.0 * a)).unwrap_or_default(),
                format!("{:.4}", r.sim_time_sec),
            ]);
        }
    }
    println!("{}", table.to_text());
    println!(
        "final objective {:.4}, final accuracy {:.1}%, avg epoch time {:.2} ms, {} bytes sent per worker",
        out.history.final_objective().unwrap(),
        100.0 * out.history.final_accuracy().unwrap(),
        1e3 * out.history.avg_epoch_time(),
        out.comm_stats.bytes_sent
    );
}
