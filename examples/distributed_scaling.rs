//! Strong- and weak-scaling demo: how the average epoch time of Newton-ADMM
//! and GIANT changes with the number of simulated workers (a miniature of the
//! paper's Figure 2), and how a slower interconnect changes the picture.
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use newton_admm_repro::prelude::*;

fn epoch_times(network: NetworkModel, workers: usize, train: &Dataset, weak_per_worker: Option<usize>) -> (f64, f64) {
    let lambda = 1e-5;
    let iters = 5;
    let shards = match weak_per_worker {
        Some(per) => partition_weak(train, workers, per).0,
        None => partition_strong(train, workers).0,
    };
    let cluster = Cluster::new(workers, network);
    let admm = NewtonAdmm::new(NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters))
        .run_cluster(&cluster, &shards, None);
    let giant = Giant::new(GiantConfig {
        max_iters: iters,
        lambda,
        ..Default::default()
    })
    .run_cluster(&cluster, &shards, None);
    (admm.history.avg_epoch_time(), giant.history.avg_epoch_time())
}

fn main() {
    let (train, _) = SyntheticConfig::mnist_like()
        .with_train_size(2_048)
        .with_test_size(128)
        .with_num_features(48)
        .generate(11);

    // Strong scaling: fixed total problem, more workers.
    let mut strong = TextTable::new("Strong scaling (avg epoch time, ms)", &["workers", "newton-admm", "giant"]);
    for workers in [1usize, 2, 4, 8] {
        let (a, g) = epoch_times(NetworkModel::infiniband_100g(), workers, &train, None);
        strong.add_row(&[format!("s{workers}"), format!("{:.3}", 1e3 * a), format!("{:.3}", 1e3 * g)]);
    }
    println!("{}", strong.to_text());

    // Weak scaling: fixed per-worker problem, more workers.
    let per_worker = 256;
    let mut weak = TextTable::new("Weak scaling (avg epoch time, ms)", &["workers", "newton-admm", "giant"]);
    for workers in [1usize, 2, 4, 8] {
        let (a, g) = epoch_times(NetworkModel::infiniband_100g(), workers, &train, Some(per_worker));
        weak.add_row(&[format!("w{workers}"), format!("{:.3}", 1e3 * a), format!("{:.3}", 1e3 * g)]);
    }
    println!("{}", weak.to_text());

    // Interconnect ablation: the paper argues Newton-ADMM's single round per
    // iteration matters most on slow networks.
    let mut nets = TextTable::new(
        "Interconnect ablation, 8 workers (avg epoch time, ms)",
        &["network", "newton-admm", "giant", "giant / newton-admm"],
    );
    for network in [
        NetworkModel::infiniband_100g(),
        NetworkModel::ethernet_10g(),
        NetworkModel::ethernet_1g(),
    ] {
        let (a, g) = epoch_times(network, 8, &train, None);
        nets.add_row(&[
            network.name.to_string(),
            format!("{:.3}", 1e3 * a),
            format!("{:.3}", 1e3 * g),
            format!("{:.2}x", g / a),
        ]);
    }
    println!("{}", nets.to_text());
}
