//! Strong- and weak-scaling demo: how the average epoch time of Newton-ADMM
//! and GIANT changes with the number of simulated workers (a miniature of the
//! paper's Figure 2), how a slower interconnect changes the picture, and
//! where each solver's communication time goes (per-collective breakdown
//! with the algorithm the crossover rule selected). Every run goes through
//! the experiment builder; only the cluster/partition specs vary.
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use newton_admm_repro::prelude::*;

/// Renders a solver's per-collective-kind communication breakdown.
fn breakdown_table(solver: &str, stats: &CommStats) -> TextTable {
    let mut t = TextTable::new(
        format!("{solver} — communication breakdown (rank 0)"),
        &["collective", "count", "bytes sent", "sim seconds", "algorithm"],
    );
    for row in stats.breakdown_rows() {
        t.add_row(&row);
    }
    t
}

/// One Newton-ADMM + one GIANT run on the given cluster/partition layout,
/// returning the two average epoch times (and the full reports for the
/// breakdown section).
fn run_pair(network: NetworkModel, workers: usize, train: &Dataset, weak_per_worker: Option<usize>) -> (RunReport, RunReport) {
    let lambda = 1e-5;
    let iters = 5;
    let partition = match weak_per_worker {
        Some(per_worker) => PartitionSpec::Weak { per_worker },
        None => PartitionSpec::Strong,
    };
    let mut reports = Experiment::new()
        .with_data(train.clone(), None)
        .with_partition(partition)
        .with_cluster(ClusterSpec::new(workers, network))
        .with_solver(SolverSpec::NewtonAdmm(
            NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters),
        ))
        .with_solver(SolverSpec::Giant(GiantConfig {
            max_iters: iters,
            lambda,
            ..Default::default()
        }))
        .run()
        .expect("scaling run");
    let giant = reports.remove(1);
    let admm = reports.remove(0);
    (admm, giant)
}

fn epoch_times(network: NetworkModel, workers: usize, train: &Dataset, weak_per_worker: Option<usize>) -> (f64, f64) {
    let (admm, giant) = run_pair(network, workers, train, weak_per_worker);
    (admm.history.avg_epoch_time(), giant.history.avg_epoch_time())
}

fn main() {
    let (train, _) = SyntheticConfig::mnist_like()
        .with_train_size(2_048)
        .with_test_size(128)
        .with_num_features(48)
        .generate(11);

    // Strong scaling: fixed total problem, more workers.
    let mut strong = TextTable::new("Strong scaling (avg epoch time, ms)", &["workers", "newton-admm", "giant"]);
    for workers in [1usize, 2, 4, 8] {
        let (a, g) = epoch_times(NetworkModel::infiniband_100g(), workers, &train, None);
        strong.add_row(&[format!("s{workers}"), format!("{:.3}", 1e3 * a), format!("{:.3}", 1e3 * g)]);
    }
    println!("{}", strong.to_text());

    // Weak scaling: fixed per-worker problem, more workers.
    let per_worker = 256;
    let mut weak = TextTable::new("Weak scaling (avg epoch time, ms)", &["workers", "newton-admm", "giant"]);
    for workers in [1usize, 2, 4, 8] {
        let (a, g) = epoch_times(NetworkModel::infiniband_100g(), workers, &train, Some(per_worker));
        weak.add_row(&[format!("w{workers}"), format!("{:.3}", 1e3 * a), format!("{:.3}", 1e3 * g)]);
    }
    println!("{}", weak.to_text());

    // Interconnect ablation: the paper argues Newton-ADMM's single round per
    // iteration matters most on slow networks.
    let mut nets = TextTable::new(
        "Interconnect ablation, 8 workers (avg epoch time, ms)",
        &["network", "newton-admm", "giant", "giant / newton-admm"],
    );
    for network in [
        NetworkModel::infiniband_100g(),
        NetworkModel::ethernet_10g(),
        NetworkModel::ethernet_1g(),
    ] {
        let (a, g) = epoch_times(network, 8, &train, None);
        nets.add_row(&[
            network.name.to_string(),
            format!("{:.3}", 1e3 * a),
            format!("{:.3}", 1e3 * g),
            format!("{:.2}x", g / a),
        ]);
    }
    println!("{}", nets.to_text());

    // Where does communication time go? Per-collective breakdown of an
    // 8-worker run, including which algorithm the payload-size crossover
    // rule picked for each collective kind — straight off the RunReports.
    let (admm, giant) = run_pair(NetworkModel::infiniband_100g(), 8, &train, None);
    println!("{}", breakdown_table("newton-admm", &admm.comm_stats).to_text());
    println!("{}", breakdown_table("giant", &giant.comm_stats).to_text());
    println!(
        "newton-admm comm fraction: {:.1}%   giant comm fraction: {:.1}%",
        100.0 * admm.comm_stats.comm_fraction(),
        100.0 * giant.comm_stats.comm_fraction()
    );
}
