//! Strong- and weak-scaling demo: how the average epoch time of Newton-ADMM
//! and GIANT changes with the number of simulated workers (a miniature of the
//! paper's Figure 2), how a slower interconnect changes the picture, and
//! where each solver's communication time goes (per-collective breakdown
//! with the algorithm the crossover rule selected).
//!
//! Run with:
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use newton_admm_repro::prelude::*;

/// Renders a solver's per-collective-kind communication breakdown.
fn breakdown_table(solver: &str, stats: &CommStats) -> TextTable {
    let mut t = TextTable::new(
        format!("{solver} — communication breakdown (rank 0)"),
        &["collective", "count", "bytes sent", "sim seconds", "algorithm"],
    );
    for row in stats.breakdown_rows() {
        t.add_row(&row);
    }
    t
}

fn epoch_times(network: NetworkModel, workers: usize, train: &Dataset, weak_per_worker: Option<usize>) -> (f64, f64) {
    let lambda = 1e-5;
    let iters = 5;
    let shards = match weak_per_worker {
        Some(per) => partition_weak(train, workers, per).0,
        None => partition_strong(train, workers).0,
    };
    let cluster = Cluster::new(workers, network);
    let admm = NewtonAdmm::new(NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters))
        .run_cluster(&cluster, &shards, None);
    let giant = Giant::new(GiantConfig {
        max_iters: iters,
        lambda,
        ..Default::default()
    })
    .run_cluster(&cluster, &shards, None);
    (admm.history.avg_epoch_time(), giant.history.avg_epoch_time())
}

fn main() {
    let (train, _) = SyntheticConfig::mnist_like()
        .with_train_size(2_048)
        .with_test_size(128)
        .with_num_features(48)
        .generate(11);

    // Strong scaling: fixed total problem, more workers.
    let mut strong = TextTable::new("Strong scaling (avg epoch time, ms)", &["workers", "newton-admm", "giant"]);
    for workers in [1usize, 2, 4, 8] {
        let (a, g) = epoch_times(NetworkModel::infiniband_100g(), workers, &train, None);
        strong.add_row(&[format!("s{workers}"), format!("{:.3}", 1e3 * a), format!("{:.3}", 1e3 * g)]);
    }
    println!("{}", strong.to_text());

    // Weak scaling: fixed per-worker problem, more workers.
    let per_worker = 256;
    let mut weak = TextTable::new("Weak scaling (avg epoch time, ms)", &["workers", "newton-admm", "giant"]);
    for workers in [1usize, 2, 4, 8] {
        let (a, g) = epoch_times(NetworkModel::infiniband_100g(), workers, &train, Some(per_worker));
        weak.add_row(&[format!("w{workers}"), format!("{:.3}", 1e3 * a), format!("{:.3}", 1e3 * g)]);
    }
    println!("{}", weak.to_text());

    // Interconnect ablation: the paper argues Newton-ADMM's single round per
    // iteration matters most on slow networks.
    let mut nets = TextTable::new(
        "Interconnect ablation, 8 workers (avg epoch time, ms)",
        &["network", "newton-admm", "giant", "giant / newton-admm"],
    );
    for network in [
        NetworkModel::infiniband_100g(),
        NetworkModel::ethernet_10g(),
        NetworkModel::ethernet_1g(),
    ] {
        let (a, g) = epoch_times(network, 8, &train, None);
        nets.add_row(&[
            network.name.to_string(),
            format!("{:.3}", 1e3 * a),
            format!("{:.3}", 1e3 * g),
            format!("{:.2}x", g / a),
        ]);
    }
    println!("{}", nets.to_text());

    // Where does communication time go? Per-collective breakdown of an
    // 8-worker run, including which algorithm the payload-size crossover
    // rule picked for each collective kind.
    let workers = 8;
    let (shards, _) = partition_strong(&train, workers);
    let cluster = Cluster::new(workers, NetworkModel::infiniband_100g());
    let lambda = 1e-5;
    let iters = 5;
    let admm = NewtonAdmm::new(NewtonAdmmConfig::default().with_lambda(lambda).with_max_iters(iters))
        .run_cluster(&cluster, &shards, None);
    let giant = Giant::new(GiantConfig {
        max_iters: iters,
        lambda,
        ..Default::default()
    })
    .run_cluster(&cluster, &shards, None);
    println!("{}", breakdown_table("newton-admm", &admm.comm_stats).to_text());
    println!("{}", breakdown_table("giant", &giant.comm_stats).to_text());
    println!(
        "newton-admm comm fraction: {:.1}%   giant comm fraction: {:.1}%",
        100.0 * admm.comm_stats.comm_fraction(),
        100.0 * giant.comm_stats.comm_fraction()
    );
}
