//! End-to-end serving pipeline: **train → save → load → serve**.
//!
//! Executes a committed [`ServingScenario`] (`scenarios/serving.json` by
//! default):
//!
//! 1. runs the training half (a full experiment `ScenarioSpec`) and exports
//!    the first solver's iterate as a versioned `.nadmm` model artifact,
//! 2. reloads the artifact from disk and proves the round trip: the loaded
//!    bytes are bit-identical and the reloaded model reproduces the
//!    training-time test accuracy recorded in the `RunReport` **exactly**,
//! 3. self-gates the batching claim: batch-32 predict throughput (rows per
//!    simulated second) must exceed batch-1 by ≥ 4× on the scenario's
//!    device model (the paper's P100 in the committed scenario),
//! 4. drives the serving simulator over the reloaded model and writes the
//!    structured [`ServeReport`] JSON, then re-reads and schema-validates
//!    the emitted file.
//!
//! Any failure — parse, train, artifact corruption, accuracy drift, a
//! missed throughput gate, or a schema-invalid report — exits non-zero;
//! this is the CI `serve-smoke` entry point.
//!
//! ```text
//! cargo run --release --example serve_bench -- scenarios/serving.json \
//!     [--out REPORT.json] [--deterministic]
//! ```
//!
//! `--deterministic` zeroes the one wall-clock field of the report, so two
//! runs of the same scenario emit **byte-identical** files (CI diffs them).

use newton_admm_repro::prelude::*;
use std::process::ExitCode;

/// Batch sizes of the throughput self-gate.
const GATE_SMALL: usize = 1;
const GATE_LARGE: usize = 32;
/// The large batch must serve at least this many times more rows per
/// simulated second than the small one (shared with `check_serve_report`).
const GATE_SPEEDUP: f64 = newton_admm_repro::serve::BATCH_SPEEDUP_GATE;

/// Rows served per simulated second at one batch size, measured on a warm
/// session over deterministic synthetic rows.
fn modeled_rows_per_sec(session: &mut InferenceSession, batch: usize) -> f64 {
    let p = session.num_features();
    let rows: Vec<f64> = (0..batch * p).map(|i| ((i as f64) * 0.11).sin()).collect();
    let mut preds = vec![0usize; batch];
    session.warm(batch);
    let timing = session.predict_batch_into(&rows, &mut preds);
    assert!(timing.sim_seconds > 0.0, "the device model must charge nonzero time");
    batch as f64 / timing.sim_seconds
}

fn run(scenario_path: &str, out_path: &str, deterministic: bool) -> Result<(), String> {
    let json = std::fs::read_to_string(scenario_path).map_err(|e| format!("cannot read {scenario_path}: {e}"))?;
    let scenario = ServingScenario::from_json(&json).map_err(|e| format!("cannot parse {scenario_path}: {e}"))?;
    scenario.validate().map_err(|e| format!("invalid serving scenario: {e}"))?;

    // ── 1. Train ─────────────────────────────────────────────────────────
    println!(
        "serving scenario `{}`: training `{}` on {} ranks …",
        scenario.name, scenario.train.name, scenario.train.cluster.ranks
    );
    let report = scenario
        .train
        .run()
        .map_err(|e| format!("training failed: {e}"))?
        .into_iter()
        .next()
        .ok_or("training produced no report")?;
    let trained_accuracy = report
        .final_accuracy
        .ok_or("training report has no test accuracy (the serving gate needs a test split)")?;
    println!(
        "trained `{}`: objective {:.6}, test accuracy {:.2}% over {} iterations",
        report.solver,
        report.final_objective.unwrap_or(f64::NAN),
        100.0 * trained_accuracy,
        report.history.records.len()
    );

    // ── 2. Save → load round trip ────────────────────────────────────────
    let artifact =
        artifact_for_scenario(&scenario.train, &report).map_err(|e| format!("cannot export the model artifact: {e}"))?;
    artifact
        .save(&scenario.artifact_path)
        .map_err(|e| format!("cannot save the model artifact: {e}"))?;
    let loaded = ModelArtifact::load(&scenario.artifact_path).map_err(|e| format!("cannot reload the artifact: {e}"))?;
    // `save()` stamps the binary checksum into the sidecar, so the loaded
    // provenance carries the mirror; everything else must round-trip
    // bit-identically.
    let mut expected = artifact.clone();
    expected.provenance.binary_checksum = Some(artifact.binary_checksum_hex());
    if loaded != expected {
        return Err("reloaded artifact differs from the saved one (round trip must be bit-identical)".into());
    }
    println!(
        "artifact round trip OK: {} ({} weights, scenario {})",
        scenario.artifact_path,
        loaded.weights.len(),
        loaded.provenance.scenario_hash.as_deref().unwrap_or("?"),
    );

    // The reloaded model must reproduce the training-time accuracy exactly
    // on the same held-out rows.
    let (_, test) = scenario
        .train
        .data
        .load()
        .map_err(|e| format!("cannot reload the scenario data: {e}"))?;
    let test = test.ok_or("the training scenario has no test split (the serving gate needs one)")?;
    let mut session =
        InferenceSession::new(&loaded, scenario.serve.device).map_err(|e| format!("cannot build a session: {e}"))?;
    let served_accuracy = session.accuracy(&test);
    if served_accuracy != trained_accuracy {
        return Err(format!(
            "serving accuracy {served_accuracy} != training-time accuracy {trained_accuracy} \
             (the reloaded model must reproduce it bit-for-bit)"
        ));
    }
    println!("held-out accuracy reproduced exactly: {:.2}%", 100.0 * served_accuracy);

    // ── 3. Batch-throughput self-gate ────────────────────────────────────
    let small = modeled_rows_per_sec(&mut session, GATE_SMALL);
    let large = modeled_rows_per_sec(&mut session, GATE_LARGE);
    let speedup = large / small;
    println!(
        "batched predict on `{}`: batch-{GATE_SMALL} {:.0} rows/s, batch-{GATE_LARGE} {:.0} rows/s ({speedup:.1}×)",
        scenario.serve.device.name, small, large
    );
    if speedup < GATE_SPEEDUP {
        return Err(format!(
            "batch-{GATE_LARGE} throughput is only {speedup:.2}× batch-{GATE_SMALL} (gate: ≥ {GATE_SPEEDUP}×)"
        ));
    }

    // ── 4. Serve ─────────────────────────────────────────────────────────
    let mut registry = ModelRegistry::new();
    registry
        .load("primary", &scenario.artifact_path, scenario.serve.device)
        .map_err(|e| e.to_string())?;
    let mut serve_report = run_serve(&scenario.serve, &mut registry).map_err(|e| format!("serving failed: {e}"))?;
    if deterministic {
        serve_report.wall_time_sec = 0.0;
    }

    // Archive, then re-read the file and validate the bytes on disk.
    let serialized = serve_report
        .to_json()
        .map_err(|e| format!("cannot serialize the serve report: {e}"))?;
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(out_path, &serialized).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let reread = std::fs::read_to_string(out_path).map_err(|e| format!("cannot re-read {out_path}: {e}"))?;
    let parsed = ServeReport::from_json(&reread).map_err(|e| format!("emitted serve report does not parse: {e}"))?;
    parsed
        .validate_schema()
        .map_err(|e| format!("schema-invalid serve report: {e}"))?;

    let mut table = TextTable::new(
        format!("serve `{}` — validated report → {out_path}", parsed.scenario),
        &[
            "model",
            "requests",
            "batches",
            "mean occ",
            "rps",
            "p50 (µs)",
            "p95 (µs)",
            "p99 (µs)",
            "max q",
        ],
    );
    for m in &parsed.per_model {
        table.add_row(&[
            m.model.clone(),
            m.requests.to_string(),
            m.batches.to_string(),
            format!("{:.2}", m.mean_batch_occupancy),
            format!("{:.0}", m.throughput_rps),
            format!("{:.1}", 1e6 * m.latency.p50_sec),
            format!("{:.1}", 1e6 * m.latency.p95_sec),
            format!("{:.1}", 1e6 * m.latency.p99_sec),
            m.max_queue_depth.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "aggregate: {} requests in {:.3} sim-ms → {:.0} req/s, p99 {:.1} µs",
        parsed.total_requests,
        1e3 * parsed.sim_duration_sec,
        parsed.throughput_rps,
        1e6 * parsed.latency.p99_sec
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_path: Option<String> = None;
    let mut out_path = "target/serve_report.json".to_string();
    let mut deterministic = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--deterministic" => deterministic = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\nusage: serve_bench [SCENARIO.json] [--out REPORT.json] [--deterministic]");
                return ExitCode::FAILURE;
            }
            path => {
                if let Some(first) = &scenario_path {
                    eprintln!("unexpected extra argument `{path}` (scenario is already `{first}`)");
                    return ExitCode::FAILURE;
                }
                scenario_path = Some(path.to_string());
            }
        }
    }
    let scenario_path = scenario_path.unwrap_or_else(|| "scenarios/serving.json".to_string());
    match run(&scenario_path, &out_path, deterministic) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
